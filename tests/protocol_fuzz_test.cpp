// Protocol fuzz and differential property suite for both wire framings.
//
// Every test here is a deterministic, seeded fuzzer built on common::rng:
// generate valid messages with the real formatters, mutate the bytes (bit
// flips, truncation, mid-frame EOF, splices, length-prefix lies, oversized
// counts), and push the result through the MessageSplitter and the parsers.
// The contract under fuzz is binary: every input yields either a parse
// error or a valid message — never a crash, hang, or overread (the suite
// runs under ASan+UBSan and TSan in CI). The differential tests pin the two
// framings to each other: one logical message, formatted as JSON and as a
// binary frame, must decode to bit-identical fields — including inf,
// denormal, and (binary-only) nan doubles.
//
// Iteration counts default small enough for the regular test run; CI's fuzz
// smoke step raises them with REPRO_FUZZ_ITERS.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "clfront/features.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/predictor.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace rc = repro::common;
namespace rco = repro::core;
namespace rcl = repro::clfront;
namespace rs = repro::serve;
namespace rb = repro::serve::binary;

namespace {

/// Fixed seed set — every run fuzzes the same inputs. CI multiplies the
/// per-seed iteration count via REPRO_FUZZ_ITERS, not the seeds.
constexpr std::uint64_t kSeeds[] = {1, 2, 0x9e3779b97f4a7c15ULL, 42,
                                    0xdeadbeefcafef00dULL};

std::size_t iterations(std::size_t default_iters) {
  if (const char* env = std::getenv("REPRO_FUZZ_ITERS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return default_iters;
}

/// ASCII including control characters — json_quote must escape its way
/// through all of them; the binary framing ships them raw.
std::string random_ascii(rc::Xoshiro256& rng, std::size_t max_len) {
  std::string s;
  const std::size_t n = rng.uniform_index(max_len + 1);
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(1 + rng.uniform_index(0x7e)));
  }
  return s;
}

/// Any byte value at all — for the binary-only round trips and the mutators.
std::string random_bytes(rc::Xoshiro256& rng, std::size_t max_len) {
  std::string s;
  const std::size_t n = rng.uniform_index(max_len + 1);
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.uniform_index(256)));
  }
  return s;
}

/// A finite double from a spread of magnitudes (including denormals and
/// negative zero) — everything both framings must round-trip exactly.
double random_finite(rc::Xoshiro256& rng) {
  switch (rng.uniform_index(6)) {
    case 0: return rng.uniform(-1.0, 1.0);
    case 1: return rng.uniform(-1e9, 1e9);
    case 2: return rng.gaussian(0.0, 1e-300);  // deep subnormal territory
    case 3: return std::ldexp(rng.uniform(0.5, 1.0), -1050);  // denormal
    case 4: return -0.0;
    default: return rng.uniform(-1e300, 1e300);
  }
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// JSON carries ids and counters as doubles — exact only below 2^53. The
/// differential tests stay under that; the binary-only tests use full u64.
std::uint64_t random_json_safe_u64(rc::Xoshiro256& rng) {
  return rng.next() & ((1ULL << 53) - 1);
}

rs::WireRequest random_request(rc::Xoshiro256& rng, bool json_safe) {
  rs::WireRequest request;
  request.id = json_safe ? random_json_safe_u64(rng) : rng.next();
  switch (rng.uniform_index(6)) {
    case 0: {
      request.kind = rs::RequestKind::kPredict;
      request.kernel = random_ascii(rng, 24);
      std::array<double, rcl::kNumFeatures> features{};
      for (auto& f : features) f = random_finite(rng);
      request.features = features;
      break;
    }
    case 1:
      request.kind = rs::RequestKind::kPredictSource;
      request.kernel = random_ascii(rng, 24);
      request.source = random_ascii(rng, 200);
      break;
    // Deadlines ride only on the predict kinds — both formatters drop them
    // from introspection/hello requests (see format_request).
    case 2:
      request.kind = rs::RequestKind::kHealth;
      break;
    case 3:
      request.kind = rs::RequestKind::kStats;
      break;
    case 4:
      request.kind = rs::RequestKind::kMetrics;
      break;
    default:
      request.kind = rs::RequestKind::kHello;
      request.max_protocol = static_cast<std::uint32_t>(rng.uniform_index(8));
      break;
  }
  // Deadlines and trace ids ride only on the predict kinds — the binary
  // formatter drops both from introspection/hello requests, so generating
  // them there would make the framings disagree by construction.
  if (request.kind == rs::RequestKind::kPredict ||
      request.kind == rs::RequestKind::kPredictSource) {
    if (rng.uniform_index(2) == 0) {
      request.deadline_ms = std::fabs(random_finite(rng));
    }
    if (rng.uniform_index(2) == 0) {
      request.trace = json_safe ? random_json_safe_u64(rng) : rng.next();
    }
  }
  return request;
}

/// A reply trace: json-safe id (both framings must agree) and a handful of
/// stages whose offsets span the finite-double space.
repro::obs::Trace random_trace(rc::Xoshiro256& rng) {
  repro::obs::Trace trace;
  trace.id = random_json_safe_u64(rng);
  const std::size_t n = rng.uniform_index(6);
  for (std::size_t i = 0; i < n; ++i) {
    trace.stages.push_back(
        {random_ascii(rng, 24), std::fabs(random_finite(rng))});
  }
  return trace;
}

rs::WireMetrics random_metrics(rc::Xoshiro256& rng) {
  rs::WireMetrics metrics;
  metrics.text = random_ascii(rng, 120);
  const std::size_t n = rng.uniform_index(8);
  for (std::size_t i = 0; i < n; ++i) {
    metrics.values.emplace_back(random_ascii(rng, 24), random_finite(rng));
  }
  return metrics;
}

rco::Predictor::KernelPrediction random_prediction(rc::Xoshiro256& rng,
                                                   bool allow_inf) {
  rco::Predictor::KernelPrediction p;
  p.kernel = random_ascii(rng, 24);
  const std::size_t n = rng.uniform_index(6);
  for (std::size_t i = 0; i < n; ++i) {
    rco::PredictedPoint point;
    point.config.core_mhz = static_cast<int>(rng.uniform_index(1000000001));
    point.config.mem_mhz = static_cast<int>(rng.uniform_index(1000000001));
    point.speedup = random_finite(rng);
    point.energy = random_finite(rng);
    if (allow_inf && rng.uniform_index(8) == 0) {
      point.speedup = std::numeric_limits<double>::infinity();
    }
    if (allow_inf && rng.uniform_index(8) == 0) {
      point.energy = -std::numeric_limits<double>::infinity();
    }
    point.heuristic = rng.uniform_index(2) == 1;
    p.pareto.push_back(point);
  }
  return p;
}

rs::WireStats random_stats(rc::Xoshiro256& rng) {
  rs::WireStats stats;
  stats.uptime_s = std::fabs(random_finite(rng));
  stats.queue_depth = random_json_safe_u64(rng);
  stats.requests = random_json_safe_u64(rng);
  stats.source_requests = random_json_safe_u64(rng);
  stats.batches = random_json_safe_u64(rng);
  stats.connections = random_json_safe_u64(rng);
  stats.protocol_errors = random_json_safe_u64(rng);
  stats.cache_hits = random_json_safe_u64(rng);
  stats.cache_misses = random_json_safe_u64(rng);
  stats.shed = random_json_safe_u64(rng);
  stats.deadline_exceeded = random_json_safe_u64(rng);
  stats.streamed = random_json_safe_u64(rng);
  stats.peak_message_bytes = random_json_safe_u64(rng);
  return stats;
}

rc::Error random_error(rc::Xoshiro256& rng) {
  const auto last = static_cast<std::uint64_t>(rc::ErrorCode::kDeadlineExceeded);
  rc::Error e;
  e.code = static_cast<rc::ErrorCode>(rng.uniform_index(last + 1));
  e.message = random_ascii(rng, 60);
  return e;
}

/// One valid wire message in a random framing (JSON line or binary frame),
/// as the exact bytes a peer would send.
std::string random_valid_message(rc::Xoshiro256& rng) {
  const bool binary = rng.uniform_index(2) == 1;
  switch (rng.uniform_index(9)) {
    case 0: {
      const auto request = random_request(rng, /*json_safe=*/true);
      if (binary) return rb::format_request_frame(request);
      return rs::format_request(request) + "\n";
    }
    case 1: {
      const auto p = random_prediction(rng, /*allow_inf=*/true);
      const auto trace = random_trace(rng);
      const auto* trace_ptr = rng.uniform_index(2) == 0 ? &trace : nullptr;
      if (binary) return rb::format_prediction_frame(rng.next(), p, trace_ptr);
      return rs::format_response(rng.next() & ((1ULL << 53) - 1), p, trace_ptr) +
             "\n";
    }
    case 2: {
      const auto e = random_error(rng);
      const auto trace = random_trace(rng);
      const auto* trace_ptr = rng.uniform_index(2) == 0 ? &trace : nullptr;
      if (binary) return rb::format_error_frame(rng.next(), e, trace_ptr);
      return rs::format_error(rng.next() & ((1ULL << 53) - 1), e, trace_ptr) +
             "\n";
    }
    case 8: {
      const auto metrics = random_metrics(rng);
      if (binary) return rb::format_metrics_frame(rng.next(), metrics);
      return rs::format_metrics_response(rng.next() & ((1ULL << 53) - 1),
                                         metrics) +
             "\n";
    }
    case 3: {
      const auto stats = random_stats(rng);
      if (binary) return rb::format_stats_frame(rng.next(), stats);
      return rs::format_stats_response(rng.next() & ((1ULL << 53) - 1), stats) + "\n";
    }
    case 4: {
      const auto stats = random_stats(rng);
      if (binary) return rb::format_health_frame(rng.next(), stats);
      return rs::format_health_response(rng.next() & ((1ULL << 53) - 1), stats) + "\n";
    }
    case 5: {
      rb::SourceBegin begin;
      begin.id = rng.next();
      begin.kernel = random_ascii(rng, 24);
      if (rng.uniform_index(2) == 0) begin.deadline_ms = std::fabs(random_finite(rng));
      if (binary) return rb::format_source_begin(begin);
      return rs::format_hello_response(rng.next() & ((1ULL << 53) - 1),
                                       static_cast<std::uint32_t>(rng.uniform_index(4))) +
             "\n";
    }
    case 6:
      return rb::format_source_chunk(rng.next(), random_bytes(rng, 100));
    default:
      return rng.uniform_index(2) == 0 ? rb::format_source_end(rng.next())
                                       : rb::format_source_abort(rng.next());
  }
}

/// Apply 1..4 random mutations in place: bit flips, byte rewrites,
/// truncation (mid-frame EOF), garbage insertion, length-prefix lies, and
/// oversized-count rewrites (any u32 in the payload may be a count).
void mutate(std::string& bytes, rc::Xoshiro256& rng) {
  const std::size_t rounds = 1 + rng.uniform_index(4);
  for (std::size_t r = 0; r < rounds && !bytes.empty(); ++r) {
    switch (rng.uniform_index(6)) {
      case 0: {  // flip one bit
        const std::size_t i = rng.uniform_index(bytes.size());
        bytes[i] = static_cast<char>(bytes[i] ^ (1u << rng.uniform_index(8)));
        break;
      }
      case 1: {  // rewrite one byte
        bytes[rng.uniform_index(bytes.size())] =
            static_cast<char>(rng.uniform_index(256));
        break;
      }
      case 2:  // truncate: mid-frame EOF
        bytes.resize(rng.uniform_index(bytes.size()));
        break;
      case 3: {  // insert garbage
        const auto garbage = random_bytes(rng, 8);
        bytes.insert(rng.uniform_index(bytes.size() + 1), garbage);
        break;
      }
      case 4: {  // length-prefix lie (frame header offset 2, if framed)
        if (bytes.size() >= rb::kHeaderBytes &&
            static_cast<unsigned char>(bytes[0]) == rb::kMagic) {
          std::uint32_t lie = static_cast<std::uint32_t>(rng.next());
          if (rng.uniform_index(2) == 0) lie &= 0xffffu;  // small lies too
          std::memcpy(bytes.data() + 2, &lie, sizeof lie);
        }
        break;
      }
      default: {  // oversized count: blast a u32 anywhere in the payload
        if (bytes.size() >= rb::kHeaderBytes + 4) {
          const std::uint32_t huge = 0xffffff00u | static_cast<std::uint32_t>(
                                                       rng.uniform_index(256));
          const std::size_t at =
              rb::kHeaderBytes +
              rng.uniform_index(bytes.size() - rb::kHeaderBytes - 3);
          std::memcpy(bytes.data() + at, &huge, sizeof huge);
        }
        break;
      }
    }
  }
}

/// Run the right parser for a split message. The only acceptable outcomes
/// are "parsed" and "parse error" — anything else (crash, overread, hang)
/// fails the sanitizer run.
void exercise_parsers(const rs::WireMessage& message) {
  if (!message.binary) {
    (void)rs::parse_request(message.payload);
    (void)rs::parse_response(message.payload);
    (void)rs::best_effort_id(message.payload);
    return;
  }
  (void)rb::best_effort_id(message.payload);
  switch (message.frame) {
    case rb::FrameType::kRequest:
      (void)rb::parse_request(message.payload);
      break;
    case rb::FrameType::kResponse:
      (void)rb::parse_response(message.payload);
      break;
    case rb::FrameType::kSourceBegin:
      (void)rb::parse_source_begin(message.payload);
      break;
    case rb::FrameType::kSourceChunk:
      (void)rb::parse_source_chunk(message.payload);
      break;
    case rb::FrameType::kSourceEnd:
      (void)rb::parse_source_end(message.payload);
      break;
    case rb::FrameType::kSourceAbort:
      (void)rb::parse_source_abort(message.payload);
      break;
  }
}

/// Feed a byte stream through a MessageSplitter in random-size reads and
/// parse whatever comes out. Returns the number of messages split. The
/// drain loop is capped: next() must reach "need more input" (or a framing
/// fault) in bounded steps, or the protocol has a livelock.
std::size_t split_and_parse(std::string_view stream, rc::Xoshiro256& rng,
                            std::size_t max_message_bytes) {
  rs::MessageSplitter splitter(max_message_bytes);
  std::size_t messages = 0;
  std::size_t offset = 0;
  // Worst case every message is one byte ('\n' empty lines are skipped, so
  // even that is generous); beyond this the splitter is spinning.
  const std::size_t drain_cap = stream.size() + 16;
  std::size_t drains = 0;
  while (offset < stream.size()) {
    const std::size_t take =
        std::min(stream.size() - offset, 1 + rng.uniform_index(96));
    splitter.feed(stream.substr(offset, take));
    offset += take;
    for (;;) {
      if (drains++ >= drain_cap) {
        ADD_FAILURE() << "MessageSplitter livelock";
        return messages;
      }
      auto next = splitter.next();
      if (!next.ok()) return messages;  // framing fault: connection closes
      if (!next.value().has_value()) break;  // need more input
      ++messages;
      exercise_parsers(*next.value());
    }
    // The splitter never buffers more than one overlong message's worth.
    EXPECT_LE(splitter.buffered_bytes(), max_message_bytes + rb::kHeaderBytes);
  }
  return messages;
}

void expect_request_equal(const rs::WireRequest& a, const rs::WireRequest& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.kernel, b.kernel);
  EXPECT_EQ(a.max_protocol, b.max_protocol);
  ASSERT_EQ(a.features.has_value(), b.features.has_value());
  if (a.features) {
    for (std::size_t i = 0; i < a.features->size(); ++i) {
      EXPECT_TRUE(bits_equal((*a.features)[i], (*b.features)[i])) << "feature " << i;
    }
  }
  EXPECT_EQ(a.source, b.source);
  ASSERT_EQ(a.deadline_ms.has_value(), b.deadline_ms.has_value());
  if (a.deadline_ms) EXPECT_TRUE(bits_equal(*a.deadline_ms, *b.deadline_ms));
  ASSERT_EQ(a.trace.has_value(), b.trace.has_value());
  if (a.trace) EXPECT_EQ(*a.trace, *b.trace);
}

void expect_response_equal(const rs::WireResponse& a, const rs::WireResponse& b) {
  EXPECT_EQ(a.id, b.id);
  ASSERT_EQ(a.prediction.has_value(), b.prediction.has_value());
  if (a.prediction) {
    EXPECT_EQ(a.prediction->kernel, b.prediction->kernel);
    ASSERT_EQ(a.prediction->pareto.size(), b.prediction->pareto.size());
    for (std::size_t i = 0; i < a.prediction->pareto.size(); ++i) {
      const auto& pa = a.prediction->pareto[i];
      const auto& pb = b.prediction->pareto[i];
      EXPECT_EQ(pa.config, pb.config);
      EXPECT_TRUE(bits_equal(pa.speedup, pb.speedup)) << "point " << i;
      EXPECT_TRUE(bits_equal(pa.energy, pb.energy)) << "point " << i;
      EXPECT_EQ(pa.heuristic, pb.heuristic);
    }
  }
  ASSERT_EQ(a.stats.has_value(), b.stats.has_value());
  EXPECT_EQ(a.health, b.health);
  if (a.stats) {
    EXPECT_TRUE(bits_equal(a.stats->uptime_s, b.stats->uptime_s));
    EXPECT_EQ(a.stats->queue_depth, b.stats->queue_depth);
    EXPECT_EQ(a.stats->requests, b.stats->requests);
    EXPECT_EQ(a.stats->source_requests, b.stats->source_requests);
    EXPECT_EQ(a.stats->batches, b.stats->batches);
    EXPECT_EQ(a.stats->connections, b.stats->connections);
    EXPECT_EQ(a.stats->protocol_errors, b.stats->protocol_errors);
    EXPECT_EQ(a.stats->cache_hits, b.stats->cache_hits);
    EXPECT_EQ(a.stats->cache_misses, b.stats->cache_misses);
    EXPECT_EQ(a.stats->shed, b.stats->shed);
    EXPECT_EQ(a.stats->deadline_exceeded, b.stats->deadline_exceeded);
    EXPECT_EQ(a.stats->streamed, b.stats->streamed);
    EXPECT_EQ(a.stats->peak_message_bytes, b.stats->peak_message_bytes);
  }
  ASSERT_EQ(a.metrics.has_value(), b.metrics.has_value());
  if (a.metrics) {
    EXPECT_EQ(a.metrics->text, b.metrics->text);
    ASSERT_EQ(a.metrics->values.size(), b.metrics->values.size());
    for (std::size_t i = 0; i < a.metrics->values.size(); ++i) {
      EXPECT_EQ(a.metrics->values[i].first, b.metrics->values[i].first);
      EXPECT_TRUE(bits_equal(a.metrics->values[i].second,
                             b.metrics->values[i].second))
          << "metric " << i;
    }
  }
  ASSERT_EQ(a.trace.has_value(), b.trace.has_value());
  if (a.trace) {
    EXPECT_EQ(a.trace->id, b.trace->id);
    ASSERT_EQ(a.trace->stages.size(), b.trace->stages.size());
    for (std::size_t i = 0; i < a.trace->stages.size(); ++i) {
      EXPECT_EQ(a.trace->stages[i].stage, b.trace->stages[i].stage);
      EXPECT_TRUE(bits_equal(a.trace->stages[i].us, b.trace->stages[i].us))
          << "stage " << i;
    }
  }
  ASSERT_EQ(a.error.has_value(), b.error.has_value());
  if (a.error) {
    EXPECT_EQ(a.error->code, b.error->code);
    EXPECT_EQ(a.error->message, b.error->message);
  }
  ASSERT_EQ(a.protocol.has_value(), b.protocol.has_value());
  if (a.protocol) EXPECT_EQ(*a.protocol, *b.protocol);
}

/// The binary frame payload of a formatted frame (header stripped), checked.
std::string frame_payload(const std::string& framed) {
  EXPECT_GE(framed.size(), rb::kHeaderBytes);
  EXPECT_EQ(static_cast<unsigned char>(framed[0]), rb::kMagic);
  return framed.substr(rb::kHeaderBytes);
}

}  // namespace

// --- fuzz: mutated streams ----------------------------------------------------

TEST(ProtocolFuzz, MutatedMessageStreamsNeverCrashTheStack) {
  const std::size_t iters = iterations(300);
  for (const std::uint64_t seed : kSeeds) {
    rc::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < iters; ++i) {
      std::string stream;
      const std::size_t messages = 1 + rng.uniform_index(3);
      for (std::size_t m = 0; m < messages; ++m) stream += random_valid_message(rng);
      mutate(stream, rng);
      split_and_parse(stream, rng, /*max_message_bytes=*/1 << 16);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(ProtocolFuzz, PureGarbageNeverHangsTheSplitter) {
  const std::size_t iters = iterations(300);
  for (const std::uint64_t seed : kSeeds) {
    rc::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < iters; ++i) {
      std::string stream = random_bytes(rng, 512);
      // Half the time, force the stream to lead with the magic byte so the
      // binary header path sees plenty of garbage too.
      if (!stream.empty() && rng.uniform_index(2) == 0) {
        stream[0] = static_cast<char>(rb::kMagic);
      }
      split_and_parse(stream, rng, /*max_message_bytes=*/256);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(ProtocolFuzz, MutatedJsonLinesAlwaysParseOrError) {
  const std::size_t iters = iterations(300);
  for (const std::uint64_t seed : kSeeds) {
    rc::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < iters; ++i) {
      std::string line = rs::format_request(random_request(rng, true));
      mutate(line, rng);
      (void)rs::parse_request(line);
      (void)rs::parse_response(line);
      (void)rs::best_effort_id(line);
    }
  }
}

// Truncation at every byte boundary: mid-frame EOF must always be a clean
// parse error, with three deliberate exceptions. A SourceChunk has valid
// proper prefixes (its data is "the rest of the payload" by design); a
// stats body's trailing peak_message_bytes u64 and a prediction/error
// body's trailing trace section are optional for version skew, so the cut
// that removes EXACTLY that tail yields a valid (tail-less) message — any
// other cut must still error.
TEST(ProtocolFuzz, TruncatedBinaryPayloadsAlwaysError) {
  rc::Xoshiro256 rng(7);
  for (std::size_t i = 0; i < iterations(60); ++i) {
    const std::string framed = random_valid_message(rng);
    if (framed.empty() || static_cast<unsigned char>(framed[0]) != rb::kMagic) {
      continue;
    }
    const auto type = static_cast<rb::FrameType>(framed[1]);
    const std::string payload = frame_payload(framed);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string_view prefix(payload.data(), cut);
      switch (type) {
        case rb::FrameType::kRequest:
          EXPECT_FALSE(rb::parse_request(prefix).ok()) << "cut " << cut;
          break;
        case rb::FrameType::kResponse: {
          const auto parsed = rb::parse_response(prefix);
          if (parsed.ok()) {
            const bool stats_tail = parsed.value().stats.has_value() &&
                                    !parsed.value().health &&
                                    cut == payload.size() - 8;
            const bool trace_tail = (parsed.value().prediction.has_value() ||
                                     parsed.value().error.has_value()) &&
                                    !parsed.value().trace.has_value();
            EXPECT_TRUE(stats_tail || trace_tail)
                << "unexpected parse success at cut " << cut;
          }
          break;
        }
        case rb::FrameType::kSourceBegin:
          EXPECT_FALSE(rb::parse_source_begin(prefix).ok()) << "cut " << cut;
          break;
        case rb::FrameType::kSourceChunk:
          // Prefixes >= the 8-byte id are themselves valid chunks.
          EXPECT_EQ(rb::parse_source_chunk(prefix).ok(), cut >= 8) << "cut " << cut;
          break;
        case rb::FrameType::kSourceEnd:
          EXPECT_FALSE(rb::parse_source_end(prefix).ok()) << "cut " << cut;
          break;
        case rb::FrameType::kSourceAbort:
          EXPECT_FALSE(rb::parse_source_abort(prefix).ok()) << "cut " << cut;
          break;
      }
    }
  }
}

// A length prefix that exceeds the splitter's bound is an unrecoverable
// framing fault (there is no resync point once a length lies); a prefix
// that lies within the bound merely starves (need-more-input) or produces a
// payload that fails its parser. Neither may crash or hang.
TEST(ProtocolFuzz, LengthPrefixLiesAreContained) {
  rc::Xoshiro256 rng(11);
  const std::size_t max_bytes = 1 << 12;
  for (std::size_t i = 0; i < iterations(200); ++i) {
    std::string framed = rb::format_request_frame(random_request(rng, true));
    const std::uint32_t lie =
        rng.uniform_index(2) == 0
            ? static_cast<std::uint32_t>(max_bytes + 1 + rng.uniform_index(1 << 20))
            : static_cast<std::uint32_t>(rng.uniform_index(max_bytes));
    std::memcpy(framed.data() + 2, &lie, sizeof lie);

    rs::MessageSplitter splitter(max_bytes);
    splitter.feed(framed);
    auto next = splitter.next();
    if (lie > max_bytes) {
      EXPECT_FALSE(next.ok()) << "oversized length prefix must be a framing fault";
    } else if (next.ok() && next.value().has_value()) {
      exercise_parsers(*next.value());
    } else {
      EXPECT_TRUE(next.ok());  // starving for more input is fine; faulting is not
    }
  }
}

// --- property: the splitter is a pure function of the byte stream -------------

TEST(ProtocolFuzz, SplitterIsChunkingInvariant) {
  rc::Xoshiro256 rng(13);
  for (std::size_t i = 0; i < iterations(100); ++i) {
    std::string stream;
    const std::size_t messages = 1 + rng.uniform_index(4);
    for (std::size_t m = 0; m < messages; ++m) stream += random_valid_message(rng);

    // WireMessage::payload is a view into the splitter's buffer, valid only
    // until the next feed() — copy it out before feeding more.
    struct OwnedMessage {
      bool binary;
      rb::FrameType frame;
      std::string payload;
    };
    auto split_at = [&stream](std::size_t chunk) {
      rs::MessageSplitter splitter(1 << 20);
      std::vector<OwnedMessage> out;
      for (std::size_t off = 0; off < stream.size(); off += chunk) {
        splitter.feed(std::string_view(stream).substr(off, chunk));
        for (;;) {
          auto next = splitter.next();
          EXPECT_TRUE(next.ok()) << next.error().message;
          if (!next.ok() || !next.value().has_value()) break;
          out.push_back(OwnedMessage{next.value()->binary, next.value()->frame,
                                     std::string(next.value()->payload)});
        }
      }
      return out;
    };

    const auto whole = split_at(stream.size());
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      const auto split = split_at(chunk);
      ASSERT_EQ(split.size(), whole.size()) << "chunk " << chunk;
      for (std::size_t m = 0; m < whole.size(); ++m) {
        EXPECT_EQ(split[m].binary, whole[m].binary);
        EXPECT_EQ(split[m].frame, whole[m].frame);
        EXPECT_EQ(split[m].payload, whole[m].payload);
      }
    }
  }
}

// --- differential: JSON and binary decode to identical messages ---------------

TEST(ProtocolDifferential, RequestsAgreeAcrossFramings) {
  for (const std::uint64_t seed : kSeeds) {
    rc::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < iterations(200); ++i) {
      const auto request = random_request(rng, /*json_safe=*/true);
      auto from_json = rs::parse_request(rs::format_request(request));
      ASSERT_TRUE(from_json.ok()) << from_json.error().message;
      auto from_binary =
          rb::parse_request(frame_payload(rb::format_request_frame(request)));
      ASSERT_TRUE(from_binary.ok()) << from_binary.error().message;
      expect_request_equal(from_json.value(), from_binary.value());
      expect_request_equal(request, from_binary.value());
    }
  }
}

TEST(ProtocolDifferential, ResponsesAgreeAcrossFramings) {
  for (const std::uint64_t seed : kSeeds) {
    rc::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < iterations(200); ++i) {
      const std::uint64_t id = random_json_safe_u64(rng);
      std::string json_line;
      std::string framed;
      switch (rng.uniform_index(5)) {
        case 0: {
          // inf travels exactly in both framings ("1e999" overflows
          // from_chars back to inf); nan is binary-only (JSON has no nan
          // literal) and covered below.
          const auto p = random_prediction(rng, /*allow_inf=*/true);
          json_line = rs::format_response(id, p);
          framed = rb::format_prediction_frame(id, p);
          break;
        }
        case 1: {
          const auto e = random_error(rng);
          json_line = rs::format_error(id, e);
          framed = rb::format_error_frame(id, e);
          break;
        }
        case 2: {
          const auto stats = random_stats(rng);
          json_line = rs::format_health_response(id, stats);
          framed = rb::format_health_frame(id, stats);
          break;
        }
        case 3: {
          const auto stats = random_stats(rng);
          json_line = rs::format_stats_response(id, stats);
          framed = rb::format_stats_frame(id, stats);
          break;
        }
        default: {
          const auto protocol = static_cast<std::uint32_t>(rng.uniform_index(4));
          json_line = rs::format_hello_response(id, protocol);
          framed = rb::format_hello_frame(id, protocol);
          break;
        }
      }
      auto from_json = rs::parse_response(json_line);
      ASSERT_TRUE(from_json.ok()) << from_json.error().message << "\n" << json_line;
      auto from_binary = rb::parse_response(frame_payload(framed));
      ASSERT_TRUE(from_binary.ok()) << from_binary.error().message;
      expect_response_equal(from_json.value(), from_binary.value());
    }
  }
}

// Health responses carry only uptime/queue_depth; the health flag must
// distinguish them from full stats dumps in both framings.
TEST(ProtocolDifferential, HealthAndStatsAreDistinguishable) {
  rs::WireStats stats;
  stats.uptime_s = 1.5;
  stats.queue_depth = 3;
  stats.requests = 7;

  auto json_health = rs::parse_response(rs::format_health_response(1, stats));
  auto json_stats = rs::parse_response(rs::format_stats_response(1, stats));
  auto bin_health = rb::parse_response(frame_payload(rb::format_health_frame(1, stats)));
  auto bin_stats = rb::parse_response(frame_payload(rb::format_stats_frame(1, stats)));
  ASSERT_TRUE(json_health.ok() && json_stats.ok() && bin_health.ok() && bin_stats.ok());
  EXPECT_TRUE(json_health.value().health);
  EXPECT_FALSE(json_stats.value().health);
  EXPECT_TRUE(bin_health.value().health);
  EXPECT_FALSE(bin_stats.value().health);
  // The short form does not carry the counters.
  EXPECT_EQ(json_health.value().stats->requests, 0u);
  EXPECT_EQ(bin_health.value().stats->requests, 0u);
  EXPECT_EQ(json_stats.value().stats->requests, 7u);
  EXPECT_EQ(bin_stats.value().stats->requests, 7u);
}

// The binary framing ships doubles as raw binary64 bit patterns: nan (with
// payload bits), negative zero, and denormals survive byte-for-byte, and
// u64 ids above 2^53 (where JSON's double ids go lossy) are exact.
TEST(ProtocolDifferential, BinaryRoundTripsPreserveEveryBitPattern) {
  const double quiet_nan = std::bit_cast<double>(0x7ff8dead5ca1ab1eULL);
  const double weird[] = {quiet_nan,
                          -0.0,
                          std::numeric_limits<double>::denorm_min(),
                          -std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::max()};
  rco::Predictor::KernelPrediction p;
  p.kernel = "bits";
  for (std::size_t i = 0; i < std::size(weird); ++i) {
    rco::PredictedPoint point;
    point.config.core_mhz = 1000 + static_cast<int>(i);
    point.config.mem_mhz = 3505;
    point.speedup = weird[i];
    point.energy = weird[std::size(weird) - 1 - i];
    p.pareto.push_back(point);
  }
  const std::uint64_t id = 0xffffffffffffff01ULL;  // not representable as double

  auto parsed = rb::parse_response(frame_payload(rb::format_prediction_frame(id, p)));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().id, id);
  ASSERT_TRUE(parsed.value().prediction.has_value());
  ASSERT_EQ(parsed.value().prediction->pareto.size(), p.pareto.size());
  for (std::size_t i = 0; i < p.pareto.size(); ++i) {
    EXPECT_TRUE(bits_equal(parsed.value().prediction->pareto[i].speedup,
                           p.pareto[i].speedup))
        << "speedup " << i;
    EXPECT_TRUE(bits_equal(parsed.value().prediction->pareto[i].energy,
                           p.pareto[i].energy))
        << "energy " << i;
  }

  // Source streaming frames carry full-width ids and arbitrary chunk bytes.
  rb::SourceBegin begin;
  begin.id = id;
  begin.kernel = std::string("\x00\xff\x7f weird", 9);
  begin.deadline_ms = 12.5;
  auto begin_parsed =
      rb::parse_source_begin(frame_payload(rb::format_source_begin(begin)));
  ASSERT_TRUE(begin_parsed.ok());
  EXPECT_EQ(begin_parsed.value().id, id);
  EXPECT_EQ(begin_parsed.value().kernel, begin.kernel);
  ASSERT_TRUE(begin_parsed.value().deadline_ms.has_value());
  EXPECT_TRUE(bits_equal(*begin_parsed.value().deadline_ms, 12.5));

  std::string chunk_bytes;
  for (int b = 0; b < 256; ++b) chunk_bytes.push_back(static_cast<char>(b));
  auto chunk_parsed =
      rb::parse_source_chunk(frame_payload(rb::format_source_chunk(id, chunk_bytes)));
  ASSERT_TRUE(chunk_parsed.ok());
  EXPECT_EQ(chunk_parsed.value().id, id);
  EXPECT_EQ(chunk_parsed.value().data, chunk_bytes);

  auto end_parsed = rb::parse_source_end(frame_payload(rb::format_source_end(id)));
  ASSERT_TRUE(end_parsed.ok());
  EXPECT_EQ(end_parsed.value(), id);
  auto abort_parsed =
      rb::parse_source_abort(frame_payload(rb::format_source_abort(id)));
  ASSERT_TRUE(abort_parsed.ok());
  EXPECT_EQ(abort_parsed.value(), id);
}

// Trailing bytes after a structurally complete payload are rejected — a
// length-prefix lie can never smuggle extra bytes past validation.
TEST(ProtocolDifferential, TrailingBytesAreRejected) {
  rc::Xoshiro256 rng(17);
  const auto request = random_request(rng, true);
  std::string payload = frame_payload(rb::format_request_frame(request));
  payload.push_back('\0');
  EXPECT_FALSE(rb::parse_request(payload).ok());

  std::string end = frame_payload(rb::format_source_end(9));
  end.push_back('x');
  EXPECT_FALSE(rb::parse_source_end(end).ok());
}

// Traced replies: the per-stage trace section must decode to identical
// id/stage/offset fields from the JSON member and the binary trailing
// section, on prediction and error replies alike.
TEST(ProtocolDifferential, TracedResponsesAgreeAcrossFramings) {
  for (const std::uint64_t seed : kSeeds) {
    rc::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < iterations(200); ++i) {
      const std::uint64_t id = random_json_safe_u64(rng);
      const auto trace = random_trace(rng);
      std::string json_line;
      std::string framed;
      if (rng.uniform_index(2) == 0) {
        const auto p = random_prediction(rng, /*allow_inf=*/true);
        json_line = rs::format_response(id, p, &trace);
        framed = rb::format_prediction_frame(id, p, &trace);
      } else {
        const auto e = random_error(rng);
        json_line = rs::format_error(id, e, &trace);
        framed = rb::format_error_frame(id, e, &trace);
      }
      auto from_json = rs::parse_response(json_line);
      ASSERT_TRUE(from_json.ok()) << from_json.error().message << "\n" << json_line;
      auto from_binary = rb::parse_response(frame_payload(framed));
      ASSERT_TRUE(from_binary.ok()) << from_binary.error().message;
      ASSERT_TRUE(from_json.value().trace.has_value());
      EXPECT_EQ(from_json.value().trace->id, trace.id);
      EXPECT_EQ(from_json.value().trace->stages.size(), trace.stages.size());
      expect_response_equal(from_json.value(), from_binary.value());
    }
  }
}

// Metrics replies: the text exposition and every (name, value) pair must
// survive both framings bit-exactly.
TEST(ProtocolDifferential, MetricsResponsesAgreeAcrossFramings) {
  for (const std::uint64_t seed : kSeeds) {
    rc::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < iterations(200); ++i) {
      const std::uint64_t id = random_json_safe_u64(rng);
      const auto metrics = random_metrics(rng);
      auto from_json =
          rs::parse_response(rs::format_metrics_response(id, metrics));
      ASSERT_TRUE(from_json.ok()) << from_json.error().message;
      auto from_binary =
          rb::parse_response(frame_payload(rb::format_metrics_frame(id, metrics)));
      ASSERT_TRUE(from_binary.ok()) << from_binary.error().message;
      ASSERT_TRUE(from_json.value().metrics.has_value());
      ASSERT_EQ(from_json.value().metrics->values.size(), metrics.values.size());
      EXPECT_EQ(from_json.value().metrics->text, metrics.text);
      expect_response_equal(from_json.value(), from_binary.value());
    }
  }
}

// The metrics request kind and trace ids on requests are protocol-2
// additions; both must agree across framings (random_request already mixes
// them in — this pins the specific fields explicitly).
TEST(ProtocolDifferential, TracedAndMetricsRequestsAgreeAcrossFramings) {
  rs::WireRequest request;
  request.id = 99;
  request.kind = rs::RequestKind::kPredictSource;
  request.source = "kernel void k() {}";
  request.trace = 0xabcdefULL;
  auto from_json = rs::parse_request(rs::format_request(request));
  ASSERT_TRUE(from_json.ok()) << from_json.error().message;
  auto from_binary =
      rb::parse_request(frame_payload(rb::format_request_frame(request)));
  ASSERT_TRUE(from_binary.ok()) << from_binary.error().message;
  ASSERT_TRUE(from_json.value().trace.has_value());
  EXPECT_EQ(*from_json.value().trace, 0xabcdefULL);
  expect_request_equal(from_json.value(), from_binary.value());

  rs::WireRequest metrics_request;
  metrics_request.id = 100;
  metrics_request.kind = rs::RequestKind::kMetrics;
  auto mj = rs::parse_request(rs::format_request(metrics_request));
  ASSERT_TRUE(mj.ok()) << mj.error().message;
  auto mb =
      rb::parse_request(frame_payload(rb::format_request_frame(metrics_request)));
  ASSERT_TRUE(mb.ok()) << mb.error().message;
  EXPECT_EQ(mj.value().kind, rs::RequestKind::kMetrics);
  expect_request_equal(mj.value(), mb.value());
}
