// Tests for the regressor registry: construction by name for every family,
// the unknown-name error path, and polymorphic versioned persistence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ml/registry.hpp"

namespace rm = repro::ml;

namespace {

/// Small smooth regression problem every family can fit: y = 2 x0 - x1 + 0.5.
rm::Matrix train_x() {
  rm::Matrix x(0, 0);
  for (int i = 0; i < 25; ++i) {
    const double a = 0.04 * i;
    const double b = 1.0 - 0.04 * i * 0.7;
    const double row[] = {a, b};
    x.push_row(row);
  }
  return x;
}

std::vector<double> train_y(const rm::Matrix& x) {
  std::vector<double> y;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    y.push_back(2.0 * x(r, 0) - x(r, 1) + 0.5);
  }
  return y;
}

}  // namespace

TEST(RegressorRegistryTest, ContainsTheDocumentedFamilies) {
  const auto names = rm::registered_regressors();
  for (const char* expected :
       {"svr-linear", "svr-rbf", "ols", "ridge", "lasso", "poly"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing family: " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegressorRegistryTest, ConstructsEveryRegisteredFamily) {
  const auto x = train_x();
  const auto y = train_y(x);
  for (const auto& name : rm::registered_regressors()) {
    auto model = rm::make_regressor(name);
    ASSERT_TRUE(model.ok()) << name << ": " << model.error().message;
    ASSERT_NE(model.value(), nullptr);
    EXPECT_FALSE(model.value()->fitted());
    model.value()->fit(x, y);
    EXPECT_TRUE(model.value()->fitted()) << name;
    const double probe[] = {0.5, 0.6};
    EXPECT_TRUE(std::isfinite(model.value()->predict_one(probe))) << name;
  }
}

TEST(RegressorRegistryTest, FactoryRespectsKernelChoice) {
  auto linear = rm::make_regressor("svr-linear");
  auto rbf = rm::make_regressor("svr-rbf");
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(rbf.ok());
  EXPECT_EQ(linear.value()->name(), "svr-linear");
  EXPECT_EQ(rbf.value()->name(), "svr-rbf");
}

TEST(RegressorRegistryTest, NameMatchesRegistryKey) {
  // Required for polymorphic persistence: the serialized envelope records
  // name(), and deserialization dispatches on it.
  for (const auto& name : rm::registered_regressors()) {
    auto model = rm::make_regressor(name);
    ASSERT_TRUE(model.ok());
    EXPECT_EQ(model.value()->name(), name);
  }
}

TEST(RegressorRegistryTest, RidgeKeepsItsKeyWhenUnregularised) {
  // "ridge" with l2 = 0 is mathematically OLS, but the family key must
  // survive construction and the serialization round-trip, or cache-key
  // comparisons retrain on every run.
  rm::RegressorParams params;
  params.ridge_l2 = 0.0;
  auto model = rm::make_regressor("ridge", params);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value()->name(), "ridge");

  const auto x = train_x();
  model.value()->fit(x, train_y(x));
  auto restored = rm::deserialize_regressor(rm::serialize_regressor(*model.value()));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value()->name(), "ridge");
}

TEST(RegressorRegistryTest, UnknownNameIsAnError) {
  const auto result = rm::make_regressor("gradient-boosting");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, repro::common::ErrorCode::kNotFound);
  EXPECT_NE(result.error().message.find("gradient-boosting"), std::string::npos);
  // The error lists what *is* available.
  EXPECT_NE(result.error().message.find("svr-linear"), std::string::npos);
}

TEST(RegressorRegistryTest, DuplicateRegistrationIsRejected) {
  auto& registry = rm::RegressorRegistry::instance();
  const auto status = registry.register_family(
      "ols", [](const rm::RegressorParams&) { return nullptr; },
      [](const std::string&) -> repro::common::Result<std::unique_ptr<rm::Regressor>> {
        return repro::common::internal_error("unused");
      });
  EXPECT_FALSE(status.ok());
}

TEST(RegressorPersistenceTest, EveryFamilyRoundTripsThroughTheEnvelope) {
  const auto x = train_x();
  const auto y = train_y(x);
  for (const auto& name : rm::registered_regressors()) {
    auto model = rm::make_regressor(name);
    ASSERT_TRUE(model.ok()) << name;
    model.value()->fit(x, y);

    const auto blob = rm::serialize_regressor(*model.value());
    auto restored = rm::deserialize_regressor(blob);
    ASSERT_TRUE(restored.ok()) << name << ": " << restored.error().message;
    EXPECT_EQ(restored.value()->name(), name);
    EXPECT_TRUE(restored.value()->fitted());

    for (std::size_t r = 0; r < x.rows(); ++r) {
      EXPECT_DOUBLE_EQ(restored.value()->predict_one(x.row(r)),
                       model.value()->predict_one(x.row(r)))
          << name << " row " << r;
    }
  }
}

TEST(RegressorPersistenceTest, SerializeBeforeFitThrows) {
  for (const auto& name : rm::registered_regressors()) {
    auto model = rm::make_regressor(name);
    ASSERT_TRUE(model.ok());
    EXPECT_THROW((void)model.value()->serialize(), std::logic_error) << name;
  }
}

TEST(RegressorPersistenceTest, RejectsBadEnvelopes) {
  EXPECT_FALSE(rm::deserialize_regressor("").ok());
  EXPECT_FALSE(rm::deserialize_regressor("garbage\n").ok());
  EXPECT_FALSE(rm::deserialize_regressor("regressor v1 unknown-family\npayload\n").ok());
  // Future envelope versions are an explicit unsupported error, not a parse
  // failure.
  const auto v2 = rm::deserialize_regressor("regressor v2 ols\nlinear v1 0 0 0\n\n");
  ASSERT_FALSE(v2.ok());
  EXPECT_EQ(v2.error().code, repro::common::ErrorCode::kUnsupported);
}

TEST(RegressorPersistenceTest, RejectsTruncatedPayloads) {
  const auto x = train_x();
  const auto y = train_y(x);
  auto model = rm::make_regressor("ols");
  ASSERT_TRUE(model.ok());
  model.value()->fit(x, y);
  const auto blob = rm::serialize_regressor(*model.value());
  EXPECT_FALSE(rm::deserialize_regressor(blob.substr(0, blob.size() / 2)).ok());
}
