// Tests for K-fold model selection plus additional edge-case coverage for
// the predictor on the single-memory-clock P100 domain.
#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/benchgen.hpp"
#include "common/rng.hpp"
#include "core/model.hpp"
#include "gpusim/simulator.hpp"
#include "kernels/kernels.hpp"
#include "ml/lasso.hpp"
#include "ml/linear.hpp"
#include "ml/model_selection.hpp"
#include "ml/poly.hpp"

namespace rm = repro::ml;

namespace {

/// y = sin(3 x0) + 0.5 x1 — nonlinear in x0, linear in x1.
rm::Dataset make_data(std::size_t n, std::uint64_t seed) {
  repro::common::Xoshiro256 rng(seed);
  rm::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    const std::vector<double> row{x0, x1};
    d.add(row, std::sin(3.0 * x0) + 0.5 * x1);
  }
  return d;
}

}  // namespace

TEST(ModelSelectionTest, CrossValRmseIsPositiveAndStable) {
  const auto data = make_data(200, 3);
  const auto make = [] { return std::make_unique<rm::LinearRegression>(); };
  const double a = rm::cross_val_rmse(data, 5, 42, make);
  const double b = rm::cross_val_rmse(data, 5, 42, make);
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);  // deterministic in the seed
}

TEST(ModelSelectionTest, PicksTheRightFamilyForNonlinearData) {
  const auto data = make_data(300, 7);
  std::vector<rm::Candidate> candidates;
  candidates.push_back({"ols", [] { return std::make_unique<rm::LinearRegression>(); }});
  candidates.push_back({"svr-rbf", [] {
                          rm::SvrParams p;
                          p.kernel = rm::KernelFunction::rbf(2.0);
                          p.c = 100.0;
                          p.epsilon = 0.01;
                          return std::make_unique<rm::Svr>(p);
                        }});
  const auto result = rm::select_model(data, 5, 11, candidates);
  EXPECT_EQ(result.best_name, "svr-rbf");
  ASSERT_EQ(result.scores.size(), 2u);
  EXPECT_LT(result.best_rmse, result.scores[0].second + 1e-12);
}

TEST(ModelSelectionTest, EmptyCandidateListThrows) {
  const auto data = make_data(50, 9);
  EXPECT_THROW((void)rm::select_model(data, 5, 1, {}), std::invalid_argument);
}

TEST(ModelSelectionTest, GridSearchCoversWholeGrid) {
  const auto data = make_data(150, 13);
  const auto result = rm::svr_rbf_grid_search(data, 4, 17, {1.0, 100.0}, {0.5, 2.0}, 0.05);
  EXPECT_EQ(result.scores.size(), 4u);
  EXPECT_FALSE(result.best_name.empty());
  // Every scored value is a valid RMSE.
  for (const auto& [name, rmse] : result.scores) {
    EXPECT_GT(rmse, 0.0) << name;
    EXPECT_LT(rmse, 2.0) << name;
  }
}

TEST(ModelSelectionTest, TighterGammaWinsOnHighFrequencyTarget) {
  // sin(3x) needs a moderately tight kernel; gamma 0.01 oversmooths.
  const auto data = make_data(300, 19);
  const auto result = rm::svr_rbf_grid_search(data, 5, 23, {100.0}, {0.01, 2.0}, 0.01);
  EXPECT_NE(result.best_name.find("g=2"), std::string::npos);
}

// --- P100 predictor edge cases ----------------------------------------------------

TEST(P100PredictorTest, NoHeuristicPointWithoutMemLDomain) {
  const repro::gpusim::GpuSimulator sim(repro::gpusim::DeviceModel::tesla_p100());
  static const auto full = repro::benchgen::generate_training_suite().value();
  std::vector<repro::benchgen::MicroBenchmark> subset(full.begin(), full.begin() + 30);
  const auto model = repro::core::FrequencyModel::train(sim, subset, {});
  ASSERT_TRUE(model.ok()) << model.error().message;

  const auto* knn = repro::kernels::find_benchmark("k-NN");
  const auto features = repro::kernels::benchmark_features(*knn).value();
  const auto pareto = model.value().predict_pareto(features);
  ASSERT_FALSE(pareto.empty());
  for (const auto& p : pareto) {
    EXPECT_FALSE(p.heuristic);  // no 405 MHz memory domain on the P100
    EXPECT_EQ(p.config.mem_mhz, 715);
  }
}

TEST(P100PredictorTest, TrainingUsesSingleMemoryDomain) {
  const repro::gpusim::GpuSimulator sim(repro::gpusim::DeviceModel::tesla_p100());
  const auto configs = sim.freq().sample_configs(40);
  EXPECT_EQ(configs.size(), 40u);
  for (const auto& c : configs) EXPECT_EQ(c.mem_mhz, 715);
}
