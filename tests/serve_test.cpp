// The serving subsystem: BoundedQueue semantics, the JSON wire protocol
// (including exact double round-trips), the LRU model cache (eviction,
// disk reuse, corrupt-file fallback), deserializer robustness against
// truncated/corrupt model files, Predictor::Builder validation, and the
// headline contract — serve::Service responses are bit-identical to direct
// Predictor::predict_batch output at any shard count, batch window, and
// thread count, under concurrent clients, in-process and over a socket.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "clfront/stream.hpp"
#include "common/fault.hpp"
#include "common/queue.hpp"
#include "common/thread_pool.hpp"
#include "core/measurement.hpp"
#include "core/model.hpp"
#include "core/predictor.hpp"
#include "gpusim/simulator.hpp"
#include "ml/svr.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/model_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace rc = repro::common;
namespace rco = repro::core;
namespace rb = repro::benchgen;
namespace rg = repro::gpusim;
namespace rs = repro::serve;
namespace rcl = repro::clfront;

namespace {

/// Restores the default global pool when the test scope ends.
struct PoolGuard {
  ~PoolGuard() { rc::ThreadPool::set_global_threads(0); }
};

/// A throwaway directory under the build tree, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& stem) {
    path = std::filesystem::temp_directory_path() /
           (stem + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Small training setup shared by the serving tests (training once keeps
/// the binary fast; every 8th micro-benchmark, 8 sampled configurations).
std::vector<rb::MicroBenchmark> small_suite() {
  static const auto subset = [] {
    const auto full = rb::generate_training_suite().value();
    std::vector<rb::MicroBenchmark> out;
    for (std::size_t i = 0; i < full.size(); i += 8) out.push_back(full[i]);
    return out;
  }();
  return subset;
}

rco::TrainingOptions small_options() {
  rco::TrainingOptions options;
  options.num_configs = 8;
  return options;
}

std::shared_ptr<const rco::FrequencyModel> trained_model() {
  static const auto model = [] {
    const rco::SimulatorBackend backend(rg::DeviceModel::titan_x());
    auto m = rco::FrequencyModel::train(backend, small_suite(), small_options());
    EXPECT_TRUE(m.ok()) << (m.ok() ? "" : m.error().message);
    return std::make_shared<const rco::FrequencyModel>(std::move(m).take());
  }();
  return model;
}

bool bitwise_equal(const std::vector<rco::PredictedPoint>& a,
                   const std::vector<rco::PredictedPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].config != b[i].config || a[i].heuristic != b[i].heuristic ||
        std::memcmp(&a[i].speedup, &b[i].speedup, sizeof(double)) != 0 ||
        std::memcmp(&a[i].energy, &b[i].energy, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// Every kernel in the test request mix (the training features are as good
/// a stand-in for client kernels as any).
std::vector<rcl::StaticFeatures> request_mix(std::size_t n) {
  const auto suite = small_suite();
  std::vector<rcl::StaticFeatures> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(suite[i % suite.size()].features);
  return out;
}

/// The raw-source request used by every predict_source test below.
const char* kSourceKernel = R"CL(
// A kernel the service has never seen: fused multiply-add with a helper.
float damp(float v) { return v * 0.9375f + 0.0625f; }
kernel void saxpy_damped(global float* x, global float* y, float a, int n) {
  int gid = get_global_id(0);
  if (gid < n) y[gid] = damp(a * x[gid] + y[gid]);
}
)CL";

}  // namespace

// --- BoundedQueue -------------------------------------------------------------

TEST(BoundedQueueTest, FifoAndCapacity) {
  rc::BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  rc::BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // full queue blocks the producer
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  rc::BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));             // producers refused after close
  EXPECT_EQ(q.pop().value(), 1);       // consumers still drain
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());   // then end-of-stream
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  rc::BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(BoundedQueueTest, PopUntilTimesOut) {
  rc::BoundedQueue<int> q(1);
  const auto t0 = std::chrono::steady_clock::now();
  const auto item =
      q.pop_until(t0 + std::chrono::milliseconds(30));
  EXPECT_FALSE(item.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(25));
}

// --- JSON + protocol ----------------------------------------------------------

TEST(ProtocolTest, JsonParsesScalarsArraysObjects) {
  const auto doc = rs::parse_json(
      R"({"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {"d": -2e3}})");
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  EXPECT_DOUBLE_EQ(doc.value().find("a")->as_number(), 1.5);
  const auto& b = doc.value().find("b")->as_array();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_TRUE(b[0].as_bool());
  EXPECT_TRUE(b[1].is_null());
  EXPECT_EQ(b[2].as_string(), "x\n\"y\"");
  EXPECT_DOUBLE_EQ(doc.value().find("c")->find("d")->as_number(), -2000.0);
}

TEST(ProtocolTest, JsonOutOfRangeNumbersSaturateOrRoundToZero) {
  // Both ends of binary64 report from_chars result_out_of_range; overflow
  // must saturate to infinity (the "1e999" sentinel) and underflow round to
  // signed zero — never the other way around.
  struct Case {
    const char* text;
    double expected;
  };
  for (const Case& c : {Case{"1e999", HUGE_VAL}, Case{"-1e999", -HUGE_VAL},
                        Case{"1e-999", 0.0}, Case{"-1e-999", -0.0},
                        Case{"0.0001e-999", 0.0}, Case{"12345e999", HUGE_VAL},
                        Case{"1e-9999999999999999999999", 0.0},
                        Case{"1e9999999999999999999999", HUGE_VAL},
                        // '+'-signed exponents: integer from_chars rejects the
                        // '+', so classification must strip it first.
                        Case{"1e+999", HUGE_VAL}, Case{"0.001e+400", HUGE_VAL},
                        Case{"100e-999", 0.0}}) {
    const auto doc = rs::parse_json(c.text);
    ASSERT_TRUE(doc.ok()) << c.text << ": " << doc.error().message;
    const double got = doc.value().as_number();
    EXPECT_EQ(got, c.expected) << c.text;
    EXPECT_EQ(std::signbit(got), std::signbit(c.expected)) << c.text;
  }
}

TEST(ProtocolTest, JsonRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated",
                          "{\"a\":}", "nan", "--1"}) {
    EXPECT_FALSE(rs::parse_json(bad).ok()) << bad;
  }
}

TEST(ProtocolTest, RequestRoundTripAndValidation) {
  rs::WireRequest request;
  request.id = 42;
  request.kernel = "saxpy";
  request.features = std::array<double, rcl::kNumFeatures>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto parsed = rs::parse_request(rs::format_request(request));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().id, 42u);
  EXPECT_EQ(parsed.value().kernel, "saxpy");
  ASSERT_TRUE(parsed.value().features.has_value());
  EXPECT_EQ((*parsed.value().features)[9], 10.0);

  // Requests must have an id and exactly one payload member.
  EXPECT_FALSE(rs::parse_request(R"({"kernel": "k"})").ok());
  EXPECT_FALSE(rs::parse_request(R"({"id": 1})").ok());
  EXPECT_FALSE(rs::parse_request(
                   R"({"id": 1, "features": [1], "source": "kernel void f() {}"})")
                   .ok());
  EXPECT_FALSE(rs::parse_request(R"({"id": 1, "features": [1, 2, 3]})").ok());
  EXPECT_FALSE(rs::parse_request(R"({"id": -4, "features": [1,2,3,4,5,6,7,8,9,10]})").ok());
  // Non-finite counts are refused per-request: an inf feature would become a
  // NaN prediction, which the response framing cannot round-trip.
  EXPECT_FALSE(rs::parse_request(R"({"id": 1, "features": [1e999,2,3,4,5,6,7,8,9,10]})").ok());
  EXPECT_FALSE(rs::parse_request(R"({"id": 1, "features": [-1e999,2,3,4,5,6,7,8,9,10]})").ok());
}

TEST(ProtocolTest, PredictSourceRequestTypeRoundTrips) {
  rs::WireRequest request;
  request.id = 11;
  request.kernel = "saxpy_damped";
  request.source = kSourceKernel;
  const std::string wire = rs::format_request(request);
  EXPECT_NE(wire.find("\"type\":\"predict_source\""), std::string::npos);
  const auto parsed = rs::parse_request(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().id, 11u);
  ASSERT_TRUE(parsed.value().source.has_value());
  EXPECT_EQ(*parsed.value().source, kSourceKernel);
  EXPECT_FALSE(parsed.value().features.has_value());

  // Explicit "predict" with features is accepted; mismatched or unknown
  // types are rejected.
  EXPECT_TRUE(
      rs::parse_request(
          R"({"id": 1, "type": "predict", "features": [1,2,3,4,5,6,7,8,9,10]})")
          .ok());
  EXPECT_FALSE(
      rs::parse_request(
          R"({"id": 1, "type": "predict_source", "features": [1,2,3,4,5,6,7,8,9,10]})")
          .ok());
  EXPECT_FALSE(
      rs::parse_request(R"({"id": 1, "type": "predict", "source": "kernel void f() {}"})")
          .ok());
  EXPECT_FALSE(
      rs::parse_request(R"({"id": 1, "type": "frobnicate", "source": "x"})").ok());
}

TEST(ProtocolTest, ResponseDoublesRoundTripBitExactly) {
  rco::Predictor::KernelPrediction prediction;
  prediction.kernel = "tricky \"name\"\n";
  prediction.pareto.push_back(
      {{1002, 3505}, 1.0 / 3.0, 0.1234567890123456789, false});
  prediction.pareto.push_back({{135, 405}, 5e-324, 1.0 + 1e-15, true});

  const auto parsed = rs::parse_response(rs::format_response(9, prediction));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().id, 9u);
  ASSERT_TRUE(parsed.value().prediction.has_value());
  EXPECT_EQ(parsed.value().prediction->kernel, prediction.kernel);
  EXPECT_TRUE(bitwise_equal(parsed.value().prediction->pareto, prediction.pareto));
}

TEST(ProtocolTest, ResponseRejectsOutOfRangeFrequencies) {
  // A misbehaving server must not drive static_cast<int> into UB client-side.
  for (const char* bad :
       {R"({"id":1,"pareto":[{"core_mhz":1e300,"mem_mhz":0,"speedup":1,"energy":1}]})",
        R"({"id":1,"pareto":[{"core_mhz":1e999,"mem_mhz":0,"speedup":1,"energy":1}]})",
        R"({"id":1,"pareto":[{"core_mhz":100,"mem_mhz":-5,"speedup":1,"energy":1}]})",
        R"({"id":1,"pareto":[{"core_mhz":100.5,"mem_mhz":0,"speedup":1,"energy":1}]})"}) {
    EXPECT_FALSE(rs::parse_response(bad).ok()) << bad;
  }
}

TEST(ProtocolTest, BestEffortIdRecoversIdFromMalformedRequests) {
  // Parseable JSON with a valid id but an invalid payload: the id survives
  // so the server's error reply correlates.
  EXPECT_EQ(rs::best_effort_id(R"({"id": 7, "features": "oops"})"), 7u);
  EXPECT_EQ(rs::best_effort_id(R"({"id": 3})"), 3u);
  // Unrecoverable: not JSON, not an object, or no usable id.
  EXPECT_EQ(rs::best_effort_id("not json"), 0u);
  EXPECT_EQ(rs::best_effort_id("[1,2]"), 0u);
  EXPECT_EQ(rs::best_effort_id(R"({"id": -1})"), 0u);
}

TEST(ProtocolTest, ErrorResponsesCarryCodeAndMessage) {
  const auto parsed = rs::parse_response(
      rs::format_error(7, rc::invalid_argument("bad features")));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_TRUE(parsed.value().error.has_value());
  EXPECT_EQ(parsed.value().error->code, rc::ErrorCode::kInvalidArgument);
  EXPECT_EQ(parsed.value().error->message, "bad features");
}

TEST(ProtocolTest, HealthAndStatsRequestsRoundTrip) {
  for (const auto kind : {rs::RequestKind::kHealth, rs::RequestKind::kStats}) {
    rs::WireRequest request;
    request.id = 5;
    request.kind = kind;
    const auto parsed = rs::parse_request(rs::format_request(request));
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed.value().id, 5u);
    EXPECT_EQ(parsed.value().kind, kind);
    EXPECT_FALSE(parsed.value().features.has_value());
    EXPECT_FALSE(parsed.value().source.has_value());
  }
  // Introspection requests must not smuggle a payload.
  EXPECT_FALSE(
      rs::parse_request(R"({"id": 1, "type": "health", "source": "x"})").ok());
  EXPECT_FALSE(
      rs::parse_request(
          R"({"id": 1, "type": "stats", "features": [1,2,3,4,5,6,7,8,9,10]})")
          .ok());
}

TEST(ProtocolTest, HealthAndStatsResponsesRoundTrip) {
  rs::WireStats stats;
  stats.uptime_s = 12.34567891234;
  stats.queue_depth = 3;
  stats.requests = 1000000007;
  stats.source_requests = 41;
  stats.batches = 99;
  stats.connections = 8;
  stats.protocol_errors = 2;
  stats.cache_hits = 5;
  stats.cache_misses = 1;

  const auto health = rs::parse_response(rs::format_health_response(4, stats));
  ASSERT_TRUE(health.ok()) << health.error().message;
  EXPECT_EQ(health.value().id, 4u);
  ASSERT_TRUE(health.value().stats.has_value());
  EXPECT_EQ(health.value().stats->uptime_s, stats.uptime_s);  // exact framing
  EXPECT_EQ(health.value().stats->queue_depth, 3u);
  EXPECT_FALSE(health.value().prediction.has_value());
  EXPECT_FALSE(health.value().error.has_value());

  const std::string wire = rs::format_stats_response(6, stats);
  const auto full = rs::parse_response(wire);
  ASSERT_TRUE(full.ok()) << full.error().message;
  ASSERT_TRUE(full.value().stats.has_value());
  EXPECT_EQ(full.value().stats->requests, stats.requests);
  EXPECT_EQ(full.value().stats->source_requests, stats.source_requests);
  EXPECT_EQ(full.value().stats->batches, stats.batches);
  EXPECT_EQ(full.value().stats->connections, stats.connections);
  EXPECT_EQ(full.value().stats->protocol_errors, stats.protocol_errors);
  EXPECT_EQ(full.value().stats->cache_hits, stats.cache_hits);
  EXPECT_EQ(full.value().stats->cache_misses, stats.cache_misses);

  // Every proper prefix is malformed — truncation must fail cleanly (no
  // crash, no half-parsed stats accepted).
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(rs::parse_response(wire.substr(0, len)).ok()) << "len " << len;
  }
  // And hostile values are refused rather than wrapped or negated.
  EXPECT_FALSE(
      rs::parse_response(R"({"id":1,"stats":{"uptime_s":-1,"requests":0}})").ok());
  EXPECT_FALSE(
      rs::parse_response(R"({"id":1,"stats":{"uptime_s":0,"requests":-3}})").ok());
  EXPECT_FALSE(
      rs::parse_response(R"({"id":1,"stats":{"uptime_s":0,"requests":1e30}})").ok());
  EXPECT_FALSE(
      rs::parse_response(R"({"id":1,"health":{"status":"sick","uptime_s":0}})").ok());
}

// --- ModelCache ---------------------------------------------------------------

TEST(ModelCacheTest, TrainsOnceThenHits) {
  rs::ModelCache cache(2);
  std::atomic<int> trainings{0};
  const rs::ModelKey key = rs::ModelKey::from_options("dev", small_options());
  const auto trainer = [&]() -> rc::Result<rco::FrequencyModel> {
    ++trainings;
    const rco::SimulatorBackend backend(rg::DeviceModel::titan_x());
    return rco::FrequencyModel::train(backend, small_suite(), small_options());
  };
  const auto first = cache.get_or_train(key, trainer);
  ASSERT_TRUE(first.ok()) << first.error().message;
  const auto second = cache.get_or_train(key, trainer);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(trainings.load(), 1);
  EXPECT_EQ(first.value().get(), second.value().get());  // same shared model
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ModelCacheTest, SurvivesConcurrentGetInsertEvictChurn) {
  // Many threads hammering more keys than the cache holds: every lookup
  // must return a usable model, the resident set must respect capacity,
  // and the counters must stay coherent. The trainer deserializes a
  // pre-serialized model, so a "training run" is cheap enough to churn.
  TempDir dir("repro-cache-churn");
  const std::string blob = trained_model()->serialize();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 50;
  constexpr std::size_t kKeys = 6;

  rs::ModelCache cache(2, dir.path.string());
  // Distinct keys over the same underlying model; the device must be the
  // model's real one or the disk probe rejects every write-through copy.
  const std::string device = trained_model()->domain().device_name();
  std::vector<rs::ModelKey> keys;
  for (std::size_t k = 0; k < kKeys; ++k) {
    auto options = small_options();
    options.num_configs = 8 + k;
    keys.push_back(rs::ModelKey::from_options(device, options));
  }

  std::atomic<std::uint64_t> trainings{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const auto& key = keys[(t * 31 + i) % kKeys];
        auto model = cache.get_or_train(key, [&]() {
          trainings.fetch_add(1, std::memory_order_relaxed);
          return rco::FrequencyModel::deserialize(blob);
        });
        if (!model.ok() || model.value() == nullptr) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        // The handle stays valid even if the entry is evicted underneath.
        if (model.value()->serialize().empty()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_FALSE(failed.load());
  EXPECT_LE(cache.size(), cache.capacity());
  const auto stats = cache.stats();
  // Every call resolved exactly one way.
  EXPECT_EQ(stats.hits + stats.misses + stats.disk_hits, kThreads * kIters);
  EXPECT_EQ(stats.misses, trainings.load());
  EXPECT_EQ(stats.disk_errors, 0u);
  // 6 keys through a 2-entry cache must evict; write-through means a key
  // can come back from disk instead of retraining.
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.disk_hits, 0u);
  EXPECT_LE(cache.resident_keys().size(), 2u);
}

TEST(ModelCacheTest, SuiteFingerprintSeparatesKeys) {
  // Two services training on different suites must never share an entry:
  // the suite fingerprint is part of the key (and of the on-disk filename).
  const auto full = rb::generate_training_suite().value();
  const auto reduced = small_suite();
  const auto fp_full = rs::ModelKey::fingerprint(full);
  const auto fp_reduced = rs::ModelKey::fingerprint(reduced);
  EXPECT_NE(fp_full, fp_reduced);
  const auto key_full = rs::ModelKey::from_options("dev", small_options(), fp_full);
  const auto key_reduced =
      rs::ModelKey::from_options("dev", small_options(), fp_reduced);
  EXPECT_NE(key_full.to_string(), key_reduced.to_string());
  EXPECT_NE(key_full.file_stem(), key_reduced.file_stem());
  // The fingerprint is stable across calls (it keys the disk cache).
  EXPECT_EQ(fp_reduced, rs::ModelKey::fingerprint(small_suite()));
}

TEST(ModelCacheTest, EvictsLeastRecentlyUsed) {
  rs::ModelCache cache(2);
  const auto trainer = [&]() -> rc::Result<rco::FrequencyModel> {
    const rco::SimulatorBackend backend(rg::DeviceModel::titan_x());
    return rco::FrequencyModel::train(backend, small_suite(), small_options());
  };
  rs::ModelKey a = rs::ModelKey::from_options("a", small_options());
  rs::ModelKey b = rs::ModelKey::from_options("b", small_options());
  rs::ModelKey c = rs::ModelKey::from_options("c", small_options());
  ASSERT_TRUE(cache.get_or_train(a, trainer).ok());
  ASSERT_TRUE(cache.get_or_train(b, trainer).ok());
  ASSERT_TRUE(cache.get_or_train(a, trainer).ok());  // a is now most recent
  auto held_b = cache.peek(b);                       // holds b across eviction
  ASSERT_NE(held_b, nullptr);
  ASSERT_TRUE(cache.get_or_train(c, trainer).ok());  // evicts b (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.peek(b), nullptr);
  EXPECT_NE(cache.peek(a), nullptr);
  EXPECT_NE(cache.peek(c), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(held_b, nullptr);  // eviction never invalidates held handles
  EXPECT_EQ(cache.resident_keys().front(), c.to_string());
}

TEST(ModelCacheTest, ReloadsFromDiskAcrossInstances) {
  TempDir dir("repro-model-cache");
  std::atomic<int> trainings{0};
  const rs::ModelKey key = rs::ModelKey::from_options(
      rg::DeviceModel::titan_x().freq.device_name(), small_options());
  const auto trainer = [&]() -> rc::Result<rco::FrequencyModel> {
    ++trainings;
    const rco::SimulatorBackend backend(rg::DeviceModel::titan_x());
    return rco::FrequencyModel::train(backend, small_suite(), small_options());
  };
  std::string serialized;
  {
    rs::ModelCache cache(2, dir.path.string());
    auto model = cache.get_or_train(key, trainer);
    ASSERT_TRUE(model.ok()) << model.error().message;
    serialized = model.value()->serialize();
  }
  {
    rs::ModelCache cache(2, dir.path.string());
    auto model = cache.get_or_train(key, trainer);
    ASSERT_TRUE(model.ok()) << model.error().message;
    EXPECT_EQ(trainings.load(), 1);  // served from disk, not retrained
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    // The disk round-trip is exact (%.17 serialization).
    EXPECT_EQ(model.value()->serialize(), serialized);
  }
}

TEST(ModelCacheTest, CorruptDiskFileFallsBackToRetraining) {
  TempDir dir("repro-model-corrupt");
  std::atomic<int> trainings{0};
  const rs::ModelKey key = rs::ModelKey::from_options(
      rg::DeviceModel::titan_x().freq.device_name(), small_options());
  const auto trainer = [&]() -> rc::Result<rco::FrequencyModel> {
    ++trainings;
    const rco::SimulatorBackend backend(rg::DeviceModel::titan_x());
    return rco::FrequencyModel::train(backend, small_suite(), small_options());
  };
  {
    rs::ModelCache cache(2, dir.path.string());
    ASSERT_TRUE(cache.get_or_train(key, trainer).ok());
  }
  // Truncate the persisted model mid-file: the next instance must survive,
  // report the damage, retrain, and overwrite the bad file.
  const auto file = dir.path / (key.file_stem() + ".model");
  ASSERT_TRUE(std::filesystem::exists(file));
  const auto full_size = std::filesystem::file_size(file);
  std::filesystem::resize_file(file, full_size / 2);
  {
    rs::ModelCache cache(2, dir.path.string());
    auto model = cache.get_or_train(key, trainer);
    ASSERT_TRUE(model.ok()) << model.error().message;
    EXPECT_EQ(trainings.load(), 2);
    EXPECT_EQ(cache.stats().disk_errors, 1u);
  }
  // The rewritten file serves the third instance again.
  EXPECT_EQ(std::filesystem::file_size(file), full_size);
  {
    rs::ModelCache cache(2, dir.path.string());
    ASSERT_TRUE(cache.get_or_train(key, trainer).ok());
    EXPECT_EQ(trainings.load(), 2);
  }
}

// --- deserializer robustness (corrupt / truncated model files) ----------------

TEST(ModelRobustnessTest, TruncatedSerializedModelNeverCrashes) {
  const std::string full = trained_model()->serialize();
  // Every truncation length in coarse steps plus a fine sweep near the
  // interesting boundaries; deserialization must return — with an error or
  // (for a cut inside the final number) a value — and never crash.
  std::size_t errors = 0;
  std::size_t checked = 0;
  for (std::size_t len = 0; len < full.size(); len += 131) {
    ++checked;
    if (!rco::FrequencyModel::deserialize(full.substr(0, len)).ok()) ++errors;
  }
  EXPECT_EQ(errors, checked);  // every strict prefix on the step grid fails
  // Quarter points explicitly (the satellite's contract).
  for (const double frac : {0.25, 0.5, 0.75}) {
    const auto len = static_cast<std::size_t>(static_cast<double>(full.size()) * frac);
    EXPECT_FALSE(rco::FrequencyModel::deserialize(full.substr(0, len)).ok()) << frac;
  }
  // And the untruncated text still round-trips.
  const auto intact = rco::FrequencyModel::deserialize(full);
  ASSERT_TRUE(intact.ok()) << intact.error().message;
  EXPECT_EQ(intact.value().serialize(), full);
}

TEST(ModelRobustnessTest, VersionMismatchIsAnError) {
  std::string text = trained_model()->serialize();
  text.replace(text.find("v2"), 2, "v9");
  const auto result = rco::FrequencyModel::deserialize(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kParseError);
}

TEST(ModelRobustnessTest, AbsurdCountsAreParseErrorsNotBadAlloc) {
  // A hand-corrupted header claiming ~10^18 training configs / support
  // vectors must be rejected before any allocation is attempted.
  const std::string model_text =
      "gpufreq_model v2\ndevice X\nbounds 0 1 0 1\n"
      "training_configs 999999999999999999\n";
  const auto model = rco::FrequencyModel::deserialize(model_text);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.error().code, rc::ErrorCode::kParseError);

  const std::string svr_text = "svr rbf 0.1 0 3 1000 0.1 0 999999999999999999 10\n";
  const auto svr = repro::ml::Svr::deserialize(svr_text);
  ASSERT_FALSE(svr.ok());
  EXPECT_EQ(svr.error().code, rc::ErrorCode::kParseError);
}

// --- Predictor::Builder validation --------------------------------------------

TEST(BuilderValidationTest, UnknownRegressorKeyFailsFast) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = rco::Predictor::builder().regressors("svr-linear", "no-such-model").build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kNotFound);
  EXPECT_NE(result.error().message.find("no-such-model"), std::string::npos);
  // Fail-fast means no suite generation and no training happened.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(1));
}

TEST(BuilderValidationTest, EmptyRegressorKeyIsInvalid) {
  auto result = rco::Predictor::builder().regressors("", "svr-rbf").build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kInvalidArgument);
}

TEST(BuilderValidationTest, EmptySuiteIsInvalid) {
  auto result = rco::Predictor::builder().suite({}).build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kInvalidArgument);
  EXPECT_NE(result.error().message.find("suite"), std::string::npos);
}

TEST(BuilderValidationTest, ZeroConfigsIsInvalid) {
  auto result = rco::Predictor::builder().num_configs(0).build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kInvalidArgument);
}

TEST(BuilderValidationTest, FromModelRejectsNull) {
  auto result = rco::Predictor::from_model(nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kInvalidArgument);
}

TEST(BuilderValidationTest, FromModelServesWithoutBackend) {
  auto predictor = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(predictor.ok());
  EXPECT_FALSE(predictor.value().has_backend());
  const auto kernels = request_mix(3);
  const auto batch = predictor.value().predict_batch(kernels);
  ASSERT_TRUE(batch.ok()) << batch.error().message;
  EXPECT_EQ(batch.value().size(), 3u);
}

// --- Service ------------------------------------------------------------------

TEST(ServiceTest, ResponsesBitIdenticalToDirectPredictBatch) {
  PoolGuard guard;
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 6;
  const auto kernels = request_mix(kClients * kPerClient);

  // Reference: one direct predict_batch over the same request mix.
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_batch(kernels);
  ASSERT_TRUE(reference.ok());

  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const std::size_t threads : {1u, 8u}) {
      for (const long window_us : {0L, 1000L}) {
        rc::ThreadPool::set_global_threads(threads);
        rs::ServiceOptions options;
        options.shards = shards;
        options.max_batch = 4;
        options.batch_window = std::chrono::microseconds(window_us);
        auto service = rs::Service::from_model(trained_model(), options);
        ASSERT_TRUE(service.ok()) << service.error().message;

        // N concurrent clients, each with its own slice of the mix.
        std::vector<rs::Service::Response> responses(kernels.size(),
                                                     rc::internal_error("unset"));
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < kClients; ++c) {
          clients.emplace_back([&, c] {
            for (std::size_t i = 0; i < kPerClient; ++i) {
              const std::size_t slot = c * kPerClient + i;
              responses[slot] = service.value()->predict(kernels[slot]);
            }
          });
        }
        for (auto& t : clients) t.join();
        service.value()->stop();

        for (std::size_t i = 0; i < kernels.size(); ++i) {
          ASSERT_TRUE(responses[i].ok())
              << responses[i].error().message << " shards=" << shards
              << " threads=" << threads << " window=" << window_us;
          EXPECT_EQ(responses[i].value().kernel, reference.value()[i].kernel);
          EXPECT_TRUE(bitwise_equal(responses[i].value().pareto,
                                    reference.value()[i].pareto))
              << "kernel " << i << " shards=" << shards << " threads=" << threads
              << " window=" << window_us;
        }
        const auto stats = service.value()->stats();
        EXPECT_EQ(stats.requests, kernels.size());
        EXPECT_GE(stats.batches, 1u);
      }
    }
  }
}

TEST(ServiceTest, CoalescesConcurrentRequestsIntoBatches) {
  rs::ServiceOptions options;
  options.shards = 1;
  options.max_batch = 16;
  options.batch_window = std::chrono::milliseconds(20);
  auto service = rs::Service::from_model(trained_model(), options);
  ASSERT_TRUE(service.ok());
  const auto responses = service.value()->predict_many(request_mix(12));
  for (const auto& r : responses) EXPECT_TRUE(r.ok());
  service.value()->stop();
  const auto stats = service.value()->stats();
  EXPECT_EQ(stats.requests, 12u);
  // predict_many submits all 12 before gathering; with a 20 ms window the
  // scheduler must have coalesced at least some of them.
  EXPECT_LT(stats.batches, 12u);
  EXPECT_GT(stats.max_batch_seen, 1u);
}

TEST(ServiceTest, StopIsGracefulAndRefusesLateWork) {
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto response = service.value()->predict(request_mix(1)[0]);
  EXPECT_TRUE(response.ok());
  service.value()->stop();
  service.value()->stop();  // idempotent
  auto late = service.value()->predict(request_mix(1)[0]);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().code, rc::ErrorCode::kUnavailable);
  EXPECT_GE(service.value()->stats().rejected, 1u);
}

TEST(ServiceTest, CreateTrainsThroughModelCache) {
  TempDir dir("repro-serve-create");
  rs::ServiceConfig config;
  config.suite = small_suite();
  config.training = small_options();
  config.options.shards = 2;
  rs::ModelCache cache(2, dir.path.string());
  auto service = rs::Service::create(config, cache);
  ASSERT_TRUE(service.ok()) << service.error().message;
  EXPECT_EQ(cache.stats().misses, 1u);
  auto response = service.value()->predict(request_mix(1)[0]);
  ASSERT_TRUE(response.ok());
  // The same cache immediately serves a second service without retraining.
  auto second = rs::Service::create(config, cache);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// --- socket round trip --------------------------------------------------------

TEST(SocketTest, TcpRoundTripIsBitIdenticalToInProcess) {
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;  // ephemeral
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok()) << server.error().message;
  ASSERT_GT(server.value()->tcp_port(), 0);

  const auto kernels = request_mix(4);
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_batch(kernels);
  ASSERT_TRUE(reference.ok());

  auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
  ASSERT_TRUE(client.ok()) << client.error().message;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    auto response = client.value().predict(kernels[i]);
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_EQ(response.value().kernel, reference.value()[i].kernel);
    // Shortest-round-trip framing means even the socket path is bit-identical.
    EXPECT_TRUE(bitwise_equal(response.value().pareto, reference.value()[i].pareto))
        << "kernel " << i;
  }

  // Malformed and unanswerable requests produce per-request errors, not
  // dropped connections.
  auto bad = client.value().predict_source("kernel void f( {", "f");
  EXPECT_FALSE(bad.ok());
  auto good_after_bad = client.value().predict(kernels[0]);
  EXPECT_TRUE(good_after_bad.ok());

  server.value()->stop();
  service.value()->stop();
  EXPECT_GE(server.value()->stats().requests, 5u);
}

TEST(SocketTest, ConnectRetryRidesOutLateServerStart) {
  // The fleet race in miniature: the client starts connecting before the
  // server exists. Bounded backoff must absorb the gap.
  TempDir dir("repro-serve-retry");
  const std::string sock = (dir.path / "late.sock").string();

  std::unique_ptr<rs::Service> service;
  std::unique_ptr<rs::SocketServer> server;
  std::thread late_starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto s = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
    ASSERT_TRUE(s.ok());
    service = std::move(s).take();
    rs::ServerOptions options;
    options.unix_path = sock;
    auto srv = rs::SocketServer::start(*service, options);
    ASSERT_TRUE(srv.ok()) << srv.error().message;
    server = std::move(srv).take();
  });

  rs::ConnectOptions retry;
  retry.attempts = 40;
  retry.initial_backoff = std::chrono::milliseconds(25);
  auto client = rs::SocketClient::connect_unix(sock, retry);
  late_starter.join();
  ASSERT_TRUE(client.ok()) << client.error().message;
  auto health = client.value().health();
  ASSERT_TRUE(health.ok()) << health.error().message;

  server->stop();
  service->stop();

  // Exhausted attempts surface the last error, annotated with the count.
  rs::ConnectOptions bounded;
  bounded.attempts = 3;
  bounded.initial_backoff = std::chrono::milliseconds(1);
  auto gone = rs::SocketClient::connect_unix((dir.path / "nope.sock").string(), bounded);
  ASSERT_FALSE(gone.ok());
  EXPECT_NE(gone.error().message.find("attempt 3/3"), std::string::npos)
      << gone.error().message;
}

TEST(SocketTest, ServerAnswersHealthAndStatsOverTheWire) {
  TempDir dir("repro-serve-stats");
  rs::ServiceConfig config;
  config.suite = small_suite();
  config.training = small_options();
  rs::ModelCache cache(2, dir.path.string());
  auto service = rs::Service::create(config, cache);
  ASSERT_TRUE(service.ok()) << service.error().message;

  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  server_options.model_cache = &cache;  // stats include cache counters
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok()) << server.error().message;

  auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  auto health = client.value().health();
  ASSERT_TRUE(health.ok()) << health.error().message;
  EXPECT_GE(health.value().uptime_s, 0.0);

  ASSERT_TRUE(client.value().predict_source(kSourceKernel).ok());
  ASSERT_TRUE(client.value().predict(request_mix(1)[0]).ok());
  auto stats = client.value().stats();
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  // "requests" counts work that entered the batching pipeline; the health
  // and stats calls are answered inline on the connection thread.
  EXPECT_EQ(stats.value().requests, 2u);
  EXPECT_EQ(stats.value().source_requests, 1u);
  EXPECT_GE(stats.value().batches, 1u);
  EXPECT_EQ(stats.value().connections, 1u);
  EXPECT_EQ(stats.value().cache_misses, 1u);  // Service::create trained once

  // Uptime is monotone across calls on the same server.
  auto again = client.value().health();
  ASSERT_TRUE(again.ok());
  EXPECT_GE(again.value().uptime_s, health.value().uptime_s);

  server.value()->stop();
  service.value()->stop();
}

TEST(SocketTest, HalfClosingPipelineClientStillGetsResponsesAndEof) {
  // netcat-style usage: write all requests, shutdown the write side, read to
  // EOF. The server must answer everything already buffered and then shut the
  // connection down itself — without waiting for the next accept's reap.
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok()) << server.error().message;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.value()->tcp_port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);

  std::string wire;
  const auto kernels = request_mix(2);
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    rs::WireRequest request;
    request.id = i + 1;
    request.kernel = kernels[i].kernel_name;
    request.features = kernels[i].counts;
    wire += rs::format_request(request);
    wire.push_back('\n');
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  // Read until the server's EOF; a bounded recv timeout turns a regression
  // (server never shuts down its side) into a failure instead of a hang.
  timeval tv{};
  tv.tv_sec = 30;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string received;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    ASSERT_GT(n, -1) << "recv timed out: server never signalled EOF";
    if (n == 0) break;
    received.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  EXPECT_EQ(std::count(received.begin(), received.end(), '\n'), 2);
  for (std::uint64_t id = 1; id <= 2; ++id) {
    const auto line_start = id == 1 ? 0 : received.find('\n') + 1;
    auto response = rs::parse_response(
        received.substr(line_start, received.find('\n', line_start) - line_start));
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_EQ(response.value().id, id);
    EXPECT_TRUE(response.value().prediction.has_value());
  }

  server.value()->stop();
  service.value()->stop();
}

// --- deadlines + load shedding ------------------------------------------------

TEST(DeadlineTest, WireRequestDeadlineRoundTripsAndStaysOptional) {
  rs::WireRequest request;
  request.id = 21;
  request.features = std::array<double, rcl::kNumFeatures>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  request.deadline_ms = 250.5;
  const std::string wire = rs::format_request(request);
  EXPECT_NE(wire.find("\"deadline_ms\":"), std::string::npos);
  const auto parsed = rs::parse_request(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_TRUE(parsed.value().deadline_ms.has_value());
  EXPECT_EQ(*parsed.value().deadline_ms, 250.5);  // exact framing

  // Absent stays absent (old clients), and a non-finite budget is refused.
  request.deadline_ms.reset();
  const auto plain = rs::parse_request(rs::format_request(request));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().deadline_ms.has_value());
  EXPECT_FALSE(
      rs::parse_request(
          R"({"id":1,"features":[1,2,3,4,5,6,7,8,9,10],"deadline_ms":1e999})")
          .ok());
}

TEST(DeadlineTest, ErrorCodeIsRetryableAndRoundTrips) {
  EXPECT_TRUE(rc::is_retryable(rc::ErrorCode::kDeadlineExceeded));
  EXPECT_TRUE(rc::is_retryable(rc::ErrorCode::kUnavailable));
  EXPECT_FALSE(rc::is_retryable(rc::ErrorCode::kParseError));
  const auto parsed = rs::parse_response(
      rs::format_error(3, rc::deadline_exceeded("too late")));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_TRUE(parsed.value().error.has_value());
  EXPECT_EQ(parsed.value().error->code, rc::ErrorCode::kDeadlineExceeded);
}

TEST(DeadlineTest, ExpiredAtSubmitRejectedBeforeBatchAssembly) {
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  const auto kernels = request_mix(1);
  const auto expired =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto response = service.value()->submit(kernels[0], expired).get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, rc::ErrorCode::kDeadlineExceeded);
  service.value()->stop();
  const auto stats = service.value()->stats();
  // The request never entered batch assembly: not admitted, no batch ran.
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
}

TEST(DeadlineTest, GenerousDeadlineStillPredictsBitIdentically) {
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto kernels = request_mix(1);
  const auto reference = direct.value().predict_batch(kernels);
  ASSERT_TRUE(reference.ok());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(1);
  auto response = service.value()->submit(kernels[0], deadline).get();
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_TRUE(bitwise_equal(response.value().pareto, reference.value()[0].pareto));
  service.value()->stop();
  EXPECT_EQ(service.value()->stats().deadline_exceeded, 0u);
}

TEST(SheddingTest, OverloadShedsWithRetryableErrorAndServesTheRest) {
  rs::ServiceOptions options;
  options.shards = 1;
  options.max_batch = 1;  // one request per batch: backlog builds fast
  options.batch_window = std::chrono::microseconds(0);
  options.max_queue_delay = std::chrono::microseconds(1);
  auto service = rs::Service::from_model(trained_model(), options);
  ASSERT_TRUE(service.ok());

  // Source requests: featurization on the shard makes service time large
  // and measurable, so the admission backlog genuinely outruns the worker.
  // Shedding must never fire cold: the first request warms the EWMA.
  auto warm = service.value()->predict_source(kSourceKernel);
  ASSERT_TRUE(warm.ok()) << warm.error().message;

  std::vector<std::future<rs::Service::Response>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(service.value()->submit_source(kSourceKernel));
  }
  std::size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.error().code, rc::ErrorCode::kUnavailable) << r.error().message;
      EXPECT_NE(r.error().message.find("overloaded"), std::string::npos);
      ++shed;
    }
  }
  service.value()->stop();
  const auto stats = service.value()->stats();
  // A 64-burst against a 1-wide, 1-per-batch service with a 1us delay bound
  // must shed; everything not shed is answered normally.
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(ok + shed, 64u);
  EXPECT_EQ(stats.requests, ok + 1);  // warm-up + the admitted part of the burst
}

TEST(SheddingTest, StatsCarryShedAndDeadlineCountersOverTheWire) {
  rs::WireStats stats;
  stats.uptime_s = 1.0;
  stats.shed = 17;
  stats.deadline_exceeded = 5;
  const auto parsed = rs::parse_response(rs::format_stats_response(2, stats));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_TRUE(parsed.value().stats.has_value());
  EXPECT_EQ(parsed.value().stats->shed, 17u);
  EXPECT_EQ(parsed.value().stats->deadline_exceeded, 5u);
  // Replies from an older server (no counters) still parse, as zero.
  const auto old = rs::parse_response(R"({"id":1,"stats":{"uptime_s":0,"requests":4}})");
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old.value().stats->shed, 0u);
  EXPECT_EQ(old.value().stats->deadline_exceeded, 0u);
}

// --- crash-atomic model persistence -------------------------------------------

TEST(AtomicSaveTest, SaveLoadRoundTripsAndDetectsCorruption) {
  TempDir dir("repro-atomic-save");
  const auto path = (dir.path / "m.model").string();
  ASSERT_TRUE(rs::save_model_atomic(*trained_model(), path).ok());
  // No temp file survives a successful save.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."), std::string::npos);
  }
  auto loaded = rs::load_cached_model(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().serialize(), trained_model()->serialize());

  // Flip one payload byte: the checksum catches it as a parse error.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-10, std::ios::end);
    f.put('#');
  }
  auto corrupt = rs::load_cached_model(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.error().code, rc::ErrorCode::kParseError);
  EXPECT_NE(corrupt.error().message.find("checksum"), std::string::npos);

  // A truncated header line is also a clean parse error, not a crash.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "gpufreq_checksum 0123";
  }
  EXPECT_FALSE(rs::load_cached_model(path).ok());
}

TEST(AtomicSaveTest, LegacyHeaderlessFilesStillLoad) {
  TempDir dir("repro-legacy-model");
  const auto path = (dir.path / "legacy.model").string();
  // A pre-checksum cache file: the raw serialization, no header.
  {
    std::ofstream f(path, std::ios::binary);
    f << trained_model()->serialize();
  }
  auto loaded = rs::load_cached_model(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().serialize(), trained_model()->serialize());
}

// --- source→prediction determinism (the streaming featurization contract) -----

TEST(ServiceTest, PredictSourceMatchesLocalPredictor) {
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok()) << reference.error().message;

  auto response = service.value()->predict_source(kSourceKernel);
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_EQ(response.value().kernel, "saxpy_damped");
  EXPECT_TRUE(bitwise_equal(response.value().pareto, reference.value().pareto));

  // A broken source answers just its own request; the service keeps serving.
  auto broken = service.value()->predict_source("kernel void broken( {");
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.error().code, rc::ErrorCode::kParseError);
  auto after = service.value()->predict_source(kSourceKernel);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(bitwise_equal(after.value().pareto, reference.value().pareto));

  service.value()->stop();
  EXPECT_EQ(service.value()->stats().source_requests, 3u);
}

TEST(SocketTest, SourcePredictionsBitIdenticalAtEveryShardThreadAndChunking) {
  // The acceptance matrix: one source featurized (a) whole-string, (b) in
  // 1-byte chunks, and (c) via predict_source over a socket at shard counts
  // 1/2/4 × thread counts 1/8 — every path must produce the same bytes.
  PoolGuard guard;
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok()) << reference.error().message;

  // (a) vs (b): whole-string and 1-byte-chunked featurization.
  const auto whole = rcl::extract_features_from_source(kSourceKernel);
  const auto chunked = rcl::extract_features_chunked(kSourceKernel, 1);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(chunked.ok()) << chunked.error().message;
  EXPECT_EQ(whole.value().kernel_name, chunked.value().kernel_name);
  EXPECT_EQ(std::memcmp(whole.value().counts.data(), chunked.value().counts.data(),
                        sizeof(double) * rcl::kNumFeatures),
            0);
  // Chunked features drive the model to the same bytes as the socket below.
  const auto from_chunked = direct.value().predict_pareto(chunked.value());
  ASSERT_TRUE(from_chunked.ok());
  EXPECT_TRUE(bitwise_equal(from_chunked.value(), reference.value().pareto));

  // (c): over the socket, across the shard × thread matrix.
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const std::size_t threads : {1u, 8u}) {
      rc::ThreadPool::set_global_threads(threads);
      rs::ServiceOptions options;
      options.shards = shards;
      options.max_batch = 4;
      options.batch_window = std::chrono::microseconds(200);
      auto service = rs::Service::from_model(trained_model(), options);
      ASSERT_TRUE(service.ok());
      rs::ServerOptions server_options;
      server_options.tcp_port = 0;
      auto server = rs::SocketServer::start(*service.value(), server_options);
      ASSERT_TRUE(server.ok()) << server.error().message;

      auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
      ASSERT_TRUE(client.ok()) << client.error().message;
      for (int repeat = 0; repeat < 3; ++repeat) {
        auto response = client.value().predict_source(kSourceKernel);
        ASSERT_TRUE(response.ok())
            << response.error().message << " shards=" << shards
            << " threads=" << threads;
        EXPECT_EQ(response.value().kernel, reference.value().kernel);
        EXPECT_TRUE(bitwise_equal(response.value().pareto, reference.value().pareto))
            << "shards=" << shards << " threads=" << threads;
      }
      server.value()->stop();
      service.value()->stop();
    }
  }
}

TEST(SocketTest, PipelinedConnectionAnswersInRequestOrder) {
  // One connection, many request lines written before any response is read
  // (features, sources, and a malformed line in the middle): the pipelined
  // server must answer every request, in request order, with per-request
  // errors where they belong.
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  server_options.max_inflight = 4;  // smaller than the request count below
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok()) << server.error().message;

  const auto kernels = request_mix(4);
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.value()->tcp_port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);

  std::string wire;
  std::uint64_t id = 0;
  for (const auto& kernel : kernels) {
    rs::WireRequest request;
    request.id = ++id;
    request.kernel = kernel.kernel_name;
    request.features = kernel.counts;
    wire += rs::format_request(request);
    wire.push_back('\n');
    rs::WireRequest source_request;
    source_request.id = ++id;
    source_request.source = kSourceKernel;
    wire += rs::format_request(source_request);
    wire.push_back('\n');
  }
  wire += R"({"id": 999, "features": "malformed"})";
  wire.push_back('\n');
  {
    rs::WireRequest last;
    last.id = 1000;
    last.source = kSourceKernel;
    wire += rs::format_request(last);
    wire.push_back('\n');
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  timeval tv{};
  tv.tv_sec = 30;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string received;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    ASSERT_GT(n, -1) << "recv timed out: pipelined responses never completed";
    if (n == 0) break;
    received.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // 2 * 4 interleaved requests + 1 malformed + 1 trailing source.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (true) {
    const auto nl = received.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(received.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 10u);

  const auto source_reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(source_reference.ok());
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    auto response = rs::parse_response(lines[i]);
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_EQ(response.value().id, ++expect);  // strict request order
    ASSERT_TRUE(response.value().prediction.has_value()) << lines[i];
    if (i % 2 == 1) {
      EXPECT_TRUE(bitwise_equal(response.value().prediction->pareto,
                                source_reference.value().pareto));
    }
  }
  auto malformed = rs::parse_response(lines[8]);
  ASSERT_TRUE(malformed.ok());
  EXPECT_EQ(malformed.value().id, 999u);
  EXPECT_TRUE(malformed.value().error.has_value());
  auto last = rs::parse_response(lines[9]);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value().id, 1000u);
  EXPECT_TRUE(last.value().prediction.has_value());

  server.value()->stop();
  service.value()->stop();
}

TEST(SocketTest, RoundTripBitIdenticalUnderShortReadsAndEintr) {
  // The full server↔client path with every socket operation subjected to
  // short reads/writes and EINTR storms: reassembly and retry must be
  // invisible — same bytes, no errors. (No drops here: this asserts the
  // benign faults change nothing; drop handling is covered in fault_test.)
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok()) << server.error().message;

  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());

  rc::FaultSpec spec;
  spec.short_rw = 0.5;
  spec.eintr = 0.3;
  rc::FaultInjector::Scope scope(123, spec);
  auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
  ASSERT_TRUE(client.ok()) << client.error().message;
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto response = client.value().predict_source(kSourceKernel);
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_TRUE(bitwise_equal(response.value().pareto, reference.value().pareto));
  }

  server.value()->stop();
  service.value()->stop();
}

TEST(SocketTest, PipelinedClientHelperMatchesSequentialCalls) {
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok());

  auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  const auto sequential = client.value().predict_source(kSourceKernel);
  ASSERT_TRUE(sequential.ok());

  std::vector<rco::Predictor::SourceRequest> sources(
      5, {kSourceKernel, ""});
  sources[2].source = "kernel void broken( {";  // per-slot error, in place
  const auto many = client.value().predict_source_many(sources);
  ASSERT_EQ(many.size(), sources.size());
  for (std::size_t i = 0; i < many.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(many[i].ok());
      continue;
    }
    ASSERT_TRUE(many[i].ok()) << i << ": " << many[i].error().message;
    EXPECT_TRUE(bitwise_equal(many[i].value().pareto, sequential.value().pareto)) << i;
  }

  server.value()->stop();
  service.value()->stop();
}

// --- binary framing & chunked source streaming --------------------------------

TEST(BinaryProtocolTest, NegotiatedRoundTripsBitIdenticalAcrossShards) {
  // The same requests over (a) the default JSON framing and (b) a
  // negotiated binary connection must produce byte-identical predictions —
  // to each other and to the direct Predictor — at every shard count.
  PoolGuard guard;
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto kernels = request_mix(4);
  const auto feature_reference = direct.value().predict_batch(kernels);
  ASSERT_TRUE(feature_reference.ok());
  const auto source_reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(source_reference.ok());

  for (const std::size_t shards : {1u, 2u, 4u}) {
    rs::ServiceOptions options;
    options.shards = shards;
    auto service = rs::Service::from_model(trained_model(), options);
    ASSERT_TRUE(service.ok());
    rs::ServerOptions server_options;
    server_options.tcp_port = 0;
    auto server = rs::SocketServer::start(*service.value(), server_options);
    ASSERT_TRUE(server.ok()) << server.error().message;

    auto json_client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
    auto binary_client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
    ASSERT_TRUE(json_client.ok() && binary_client.ok());
    auto negotiated = binary_client.value().negotiate_binary();
    ASSERT_TRUE(negotiated.ok()) << negotiated.error().message;
    EXPECT_EQ(negotiated.value(), rs::kProtocolVersion);
    EXPECT_TRUE(binary_client.value().binary());
    EXPECT_FALSE(json_client.value().binary());

    for (std::size_t i = 0; i < kernels.size(); ++i) {
      auto via_json = json_client.value().predict(kernels[i]);
      auto via_binary = binary_client.value().predict(kernels[i]);
      ASSERT_TRUE(via_json.ok()) << via_json.error().message;
      ASSERT_TRUE(via_binary.ok()) << via_binary.error().message;
      EXPECT_TRUE(bitwise_equal(via_binary.value().pareto,
                                feature_reference.value()[i].pareto))
          << "kernel " << i << " shards=" << shards;
      EXPECT_TRUE(bitwise_equal(via_binary.value().pareto, via_json.value().pareto));
      EXPECT_EQ(via_binary.value().kernel, via_json.value().kernel);
    }
    auto source_binary = binary_client.value().predict_source(kSourceKernel);
    ASSERT_TRUE(source_binary.ok()) << source_binary.error().message;
    EXPECT_TRUE(bitwise_equal(source_binary.value().pareto,
                              source_reference.value().pareto))
        << "shards=" << shards;

    // Errors travel the binary framing too, still per-request.
    auto bad = binary_client.value().predict_source("kernel void broken( {");
    EXPECT_FALSE(bad.ok());
    auto after = binary_client.value().predict_source(kSourceKernel);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(bitwise_equal(after.value().pareto, source_reference.value().pareto));

    // Introspection over binary frames matches the JSON answers.
    auto binary_stats = binary_client.value().stats();
    auto json_stats = json_client.value().stats();
    ASSERT_TRUE(binary_stats.ok() && json_stats.ok());
    EXPECT_EQ(binary_stats.value().requests, json_stats.value().requests);

    server.value()->stop();
    service.value()->stop();
  }
}

TEST(BinaryProtocolTest, ChunkedStreamMatchesUnstreamedAtEverySplit) {
  // predict_source_stream must be bit-identical to plain predict_source on
  // the concatenated bytes at any chunk boundary — 1 byte at a time up to
  // the whole source in one chunk.
  PoolGuard guard;
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());

  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok());

  auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  auto negotiated = client.value().negotiate_binary();
  ASSERT_TRUE(negotiated.ok());
  ASSERT_EQ(negotiated.value(), rs::kProtocolVersion);

  const std::string source = kSourceKernel;
  const std::size_t splits[] = {1, 7, 64, 1024, source.size()};
  for (const std::size_t split : splits) {
    std::size_t offset = 0;
    auto provider = [&]() -> std::optional<std::string> {
      if (offset >= source.size()) return std::nullopt;
      const std::size_t n = std::min(split, source.size() - offset);
      std::string chunk = source.substr(offset, n);
      offset += n;
      return chunk;
    };
    auto response = client.value().predict_source_stream(provider);
    ASSERT_TRUE(response.ok()) << response.error().message << " split=" << split;
    EXPECT_EQ(response.value().kernel, reference.value().kernel);
    EXPECT_TRUE(bitwise_equal(response.value().pareto, reference.value().pareto))
        << "split=" << split;
  }

  // The stream requests are visible in the server's counters.
  auto stats = client.value().stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().streamed, std::size(splits));

  server.value()->stop();
  service.value()->stop();
}

TEST(BinaryProtocolTest, StreamServesSourceLargerThanLineBoundInBoundedMemory) {
  // A source far larger than max_line_bytes is un-servable as one JSON line
  // (the framing bound kills the connection) but streams through chunked
  // frames fine — and the server never buffers more than a frame at a time:
  // its per-connection peak message buffer stays within a few line bounds
  // while the source is two orders of magnitude larger.
  PoolGuard guard;
  std::string big_source = kSourceKernel;
  big_source.reserve(260 << 10);
  while (big_source.size() < (256 << 10)) {
    big_source += "// padding comment line to inflate the translation unit\n";
  }
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(big_source);
  ASSERT_TRUE(reference.ok()) << reference.error().message;

  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  server_options.max_line_bytes = 4096;
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok());

  {
    // The whole-line JSON path cannot carry it: the request exceeds the
    // framing bound and the connection dies with an error.
    auto json_client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
    ASSERT_TRUE(json_client.ok());
    auto refused = json_client.value().predict_source(big_source);
    EXPECT_FALSE(refused.ok());
  }

  {
    auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
    ASSERT_TRUE(client.ok());
    auto negotiated = client.value().negotiate_binary();
    ASSERT_TRUE(negotiated.ok());
    ASSERT_EQ(negotiated.value(), rs::kProtocolVersion);

    std::size_t offset = 0;
    auto provider = [&]() -> std::optional<std::string> {
      if (offset >= big_source.size()) return std::nullopt;
      const std::size_t n = std::min<std::size_t>(512, big_source.size() - offset);
      std::string chunk = big_source.substr(offset, n);
      offset += n;
      return chunk;
    };
    auto response = client.value().predict_source_stream(provider);
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_TRUE(bitwise_equal(response.value().pareto, reference.value().pareto));
  }  // disconnect: the connection's buffering peak folds into server stats

  server.value()->stop();
  const auto stats = server.value()->stats();
  EXPECT_GT(stats.peak_message_bytes, 0u);
  EXPECT_LE(stats.peak_message_bytes, 3 * server_options.max_line_bytes)
      << "request buffering must be bounded by the frame size, not the source";

  service.value()->stop();
}

TEST(BinaryProtocolTest, NegotiationDowngradesAgainstJsonOnlyServer) {
  // enable_binary=false makes the server an old-style JSON-only peer: hello
  // answers protocol 0 and the client stays on JSON lines, fully working.
  PoolGuard guard;
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  server_options.enable_binary = false;
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok());

  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());

  auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  auto negotiated = client.value().negotiate_binary();
  ASSERT_TRUE(negotiated.ok()) << negotiated.error().message;
  EXPECT_EQ(negotiated.value(), 0u);
  EXPECT_FALSE(client.value().binary());

  auto response = client.value().predict_source(kSourceKernel);
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_TRUE(bitwise_equal(response.value().pareto, reference.value().pareto));

  // predict_source_stream still works on the downgraded connection — the
  // chunks are concatenated into one ordinary request.
  int calls = 0;
  auto provider = [&]() -> std::optional<std::string> {
    const std::string source = kSourceKernel;
    const std::size_t piece = source.size() / 3 + 1;
    if (static_cast<std::size_t>(calls) * piece >= source.size()) return std::nullopt;
    auto chunk = source.substr(static_cast<std::size_t>(calls) * piece, piece);
    ++calls;
    return chunk;
  };
  auto streamed = client.value().predict_source_stream(provider);
  ASSERT_TRUE(streamed.ok()) << streamed.error().message;
  EXPECT_TRUE(bitwise_equal(streamed.value().pareto, reference.value().pareto));

  server.value()->stop();
  service.value()->stop();
}

TEST(BinaryProtocolTest, NegotiationDowngradesAgainstPreHelloPeer) {
  // A peer that predates "hello" answers it with an ordinary JSON error
  // line (here: a raw fake speaking exactly that). negotiate_binary must
  // treat the error reply as "JSON only", not as a failure.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  std::thread peer([listener] {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) return;
    std::string line;
    char c = 0;
    while (::read(fd, &c, 1) == 1 && c != '\n') line.push_back(c);
    std::string reply = rs::format_error(
        rs::best_effort_id(line),
        rc::parse_error("protocol: unknown request type \"hello\""));
    reply.push_back('\n');
    (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
    ::close(fd);
  });

  auto client = rs::SocketClient::connect_tcp(ntohs(addr.sin_port));
  ASSERT_TRUE(client.ok()) << client.error().message;
  auto negotiated = client.value().negotiate_binary();
  ASSERT_TRUE(negotiated.ok()) << negotiated.error().message;
  EXPECT_EQ(negotiated.value(), 0u);
  EXPECT_FALSE(client.value().binary());

  peer.join();
  ::close(listener);
}

// --- observability: traced requests and the metrics request kind --------------

TEST(ObservabilityTest, TracedRequestCarriesStagesAndStaysBitIdentical) {
  // A traced predict_source must come back with the full worker stage set
  // (parse, admission, batch, execute, reply) and — trace aside — the exact
  // bytes an untraced request gets: the trace is the one deliberately
  // nondeterministic reply field (docs/DETERMINISM.md), never part of the
  // prediction. Checked at several shard counts over both framings.
  PoolGuard guard;
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());

  for (const std::size_t shards : {1u, 2u, 4u}) {
    rs::ServiceOptions options;
    options.shards = shards;
    auto service = rs::Service::from_model(trained_model(), options);
    ASSERT_TRUE(service.ok());
    rs::ServerOptions server_options;
    server_options.tcp_port = 0;
    auto server = rs::SocketServer::start(*service.value(), server_options);
    ASSERT_TRUE(server.ok()) << server.error().message;

    for (const bool binary : {false, true}) {
      auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
      ASSERT_TRUE(client.ok()) << client.error().message;
      if (binary) {
        auto negotiated = client.value().negotiate_binary();
        ASSERT_TRUE(negotiated.ok()) << negotiated.error().message;
        ASSERT_EQ(negotiated.value(), rs::kProtocolVersion);
      }

      // Untraced by default: no trace rides the reply.
      auto plain = client.value().predict_source(kSourceKernel);
      ASSERT_TRUE(plain.ok()) << plain.error().message;
      EXPECT_FALSE(client.value().last_trace().has_value());

      client.value().set_trace_enabled(true);
      auto traced = client.value().predict_source(kSourceKernel);
      ASSERT_TRUE(traced.ok()) << traced.error().message;
      EXPECT_TRUE(bitwise_equal(traced.value().pareto, reference.value().pareto))
          << "shards=" << shards << " binary=" << binary;
      EXPECT_TRUE(bitwise_equal(traced.value().pareto, plain.value().pareto));

      ASSERT_TRUE(client.value().last_trace().has_value())
          << "shards=" << shards << " binary=" << binary;
      const auto& trace = *client.value().last_trace();
      std::vector<std::string> stages;
      for (const auto& s : trace.stages) stages.push_back(s.stage);
      for (const char* expected :
           {"parse", "admission", "batch", "execute", "reply"}) {
        EXPECT_NE(std::find(stages.begin(), stages.end(), expected),
                  stages.end())
            << "missing stage " << expected << " shards=" << shards
            << " binary=" << binary;
      }
      EXPECT_GE(stages.size(), 5u);

      // Back off: the next request is untraced again.
      client.value().set_trace_enabled(false);
      auto untraced = client.value().predict_source(kSourceKernel);
      ASSERT_TRUE(untraced.ok());
      EXPECT_FALSE(client.value().last_trace().has_value());
    }

    server.value()->stop();
    service.value()->stop();
  }
}

TEST(ObservabilityTest, TracedErrorReplyAnswersWhereItFailed) {
  // The trace rides error replies too — a rejected request still tells the
  // client which stage it reached.
  PoolGuard guard;
  auto service = rs::Service::from_model(trained_model(), rs::ServiceOptions{});
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok());

  auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  client.value().set_trace_enabled(true);
  auto bad = client.value().predict_source("kernel void broken( {");
  ASSERT_FALSE(bad.ok());
  ASSERT_TRUE(client.value().last_trace().has_value());
  EXPECT_FALSE(client.value().last_trace()->stages.empty());

  server.value()->stop();
  service.value()->stop();
}

TEST(ObservabilityTest, MetricsRequestAnsweredInlineOverBothFramings) {
  // The "metrics" request is answered on the connection thread like
  // health/stats, in both framings, exposing the service's counters from a
  // per-test registry (so parallel tests in this binary can't interfere).
  PoolGuard guard;
  repro::obs::Registry registry;
  rs::ServiceOptions options;
  options.registry = &registry;
  auto service = rs::Service::from_model(trained_model(), options);
  ASSERT_TRUE(service.ok());
  rs::ServerOptions server_options;
  server_options.tcp_port = 0;
  server_options.registry = &registry;
  auto server = rs::SocketServer::start(*service.value(), server_options);
  ASSERT_TRUE(server.ok());

  auto client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  const auto kernels = request_mix(3);
  for (const auto& kernel : kernels) {
    ASSERT_TRUE(client.value().predict(kernel).ok());
  }

  auto metrics = client.value().metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.error().message;
#if !defined(REPRO_OBS_DISABLED)
  bool found = false;
  for (const auto& [name, value] : metrics.value().values) {
    if (name == "repro_requests_total") {
      EXPECT_EQ(value, 3.0);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "repro_requests_total missing";
  EXPECT_NE(metrics.value().text.find("repro_requests_total 3"),
            std::string::npos)
      << metrics.value().text;
  EXPECT_NE(metrics.value().text.find("repro_request_latency_us_count"),
            std::string::npos);
#endif

  // The binary framing answers the same snapshot shape.
  auto binary_client = rs::SocketClient::connect_tcp(server.value()->tcp_port());
  ASSERT_TRUE(binary_client.ok());
  auto negotiated = binary_client.value().negotiate_binary();
  ASSERT_TRUE(negotiated.ok());
  ASSERT_EQ(negotiated.value(), rs::kProtocolVersion);
  auto binary_metrics = binary_client.value().metrics();
  ASSERT_TRUE(binary_metrics.ok()) << binary_metrics.error().message;
  EXPECT_EQ(binary_metrics.value().values.size(), metrics.value().values.size());
#if !defined(REPRO_OBS_DISABLED)
  EXPECT_NE(binary_metrics.value().text.find("repro_requests_total"),
            std::string::npos);
#endif

  server.value()->stop();
  service.value()->stop();
}

TEST(ObservabilityTest, WireStatsFieldsSurviveBothFramings) {
  // Every WireStats counter — all 13 fields, each with a distinct value —
  // must round-trip unchanged through the JSON and the binary stats
  // framing. A field swap or a dropped member shows up as a mismatch here
  // before any fuzz run would find it.
  rs::WireStats stats;
  stats.uptime_s = 1.5;
  stats.queue_depth = 2;
  stats.requests = 3;
  stats.source_requests = 4;
  stats.batches = 5;
  stats.connections = 6;
  stats.protocol_errors = 7;
  stats.cache_hits = 8;
  stats.cache_misses = 9;
  stats.shed = 10;
  stats.deadline_exceeded = 11;
  stats.streamed = 12;
  stats.peak_message_bytes = 13;

  const std::string framed = rs::binary::format_stats_frame(21, stats);
  ASSERT_GE(framed.size(), rs::binary::kHeaderBytes);
  auto from_binary =
      rs::binary::parse_response(framed.substr(rs::binary::kHeaderBytes));
  auto from_json = rs::parse_response(rs::format_stats_response(21, stats));
  ASSERT_TRUE(from_binary.ok()) << from_binary.error().message;
  ASSERT_TRUE(from_json.ok()) << from_json.error().message;

  for (const auto* parsed : {&from_binary.value(), &from_json.value()}) {
    ASSERT_TRUE(parsed->stats.has_value());
    const rs::WireStats& s = *parsed->stats;
    EXPECT_DOUBLE_EQ(s.uptime_s, 1.5);
    EXPECT_EQ(s.queue_depth, 2u);
    EXPECT_EQ(s.requests, 3u);
    EXPECT_EQ(s.source_requests, 4u);
    EXPECT_EQ(s.batches, 5u);
    EXPECT_EQ(s.connections, 6u);
    EXPECT_EQ(s.protocol_errors, 7u);
    EXPECT_EQ(s.cache_hits, 8u);
    EXPECT_EQ(s.cache_misses, 9u);
    EXPECT_EQ(s.shed, 10u);
    EXPECT_EQ(s.deadline_exceeded, 11u);
    EXPECT_EQ(s.streamed, 12u);
    EXPECT_EQ(s.peak_message_bytes, 13u);
  }
}
