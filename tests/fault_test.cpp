// The fault-injection layer and the timeout-aware socket I/O it hooks:
// REPRO_FAULTS spec parsing (loud rejection of typos — a silently inert
// chaos spec would make the soak lie), seed determinism of the decision
// stream, common::net::read_some/write_all behaviour under injected short
// reads/writes, EINTR storms, and connection drops, the per-op timeouts
// that keep a silent peer from wedging a client, and the SocketClient
// connect path under injected refusals.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <tuple>
#include <vector>

#include "common/fault.hpp"
#include "common/net.hpp"
#include "serve/client.hpp"

namespace rc = repro::common;
namespace rn = repro::common::net;
namespace rs = repro::serve;

using rc::FaultInjector;
using rc::FaultSpec;

namespace {

/// A connected AF_UNIX stream pair, closed on destruction.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

/// Drain exactly `n` bytes from fd via read_some (reassembly loop).
std::string read_exactly(int fd, std::size_t n) {
  std::string out;
  char chunk[256];
  while (out.size() < n) {
    const auto r = rn::read_some(fd, chunk, sizeof chunk,
                                 std::chrono::milliseconds(2000));
    if (r.status != rn::IoStatus::kOk) break;
    out.append(chunk, r.bytes);
  }
  return out;
}

}  // namespace

// --- spec parsing -------------------------------------------------------------

TEST(FaultSpecTest, ParsesTheFullKnobSet) {
  const auto parsed = FaultInjector::parse(
      "42:short_rw=0.3,eintr=0.2,drop=0.01,connect_fail=0.5,delay_ms=2,delay_p=0.1");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().first, 42u);
  const FaultSpec& spec = parsed.value().second;
  EXPECT_DOUBLE_EQ(spec.short_rw, 0.3);
  EXPECT_DOUBLE_EQ(spec.eintr, 0.2);
  EXPECT_DOUBLE_EQ(spec.drop, 0.01);
  EXPECT_DOUBLE_EQ(spec.connect_fail, 0.5);
  EXPECT_DOUBLE_EQ(spec.delay_p, 0.1);
  EXPECT_EQ(spec.delay_ms.count(), 2);
  EXPECT_TRUE(spec.any());

  // Whitespace and an empty tail entry are tolerated; a zero spec is legal
  // but injects nothing.
  const auto spaced = FaultInjector::parse("7: short_rw = 1 ,");
  ASSERT_TRUE(spaced.ok()) << spaced.error().message;
  EXPECT_DOUBLE_EQ(spaced.value().second.short_rw, 1.0);
  const auto zero = FaultInjector::parse("7:");
  ASSERT_TRUE(zero.ok());
  EXPECT_FALSE(zero.value().second.any());
}

TEST(FaultSpecTest, RejectsTyposLoudly) {
  // Every malformed spec is an error — never a silently inert injector.
  for (const char* bad :
       {"no-colon", ":short_rw=1", "x7:short_rw=1", "7:short_rw",
        "7:short_rw=oops", "7:short_rw=1.5", "7:eintr=-0.1", "7:shortrw=0.5",
        "7:drop=2", "7:delay_p=1.01"}) {
    EXPECT_FALSE(FaultInjector::parse(bad).ok()) << bad;
  }
}

// --- determinism --------------------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameDecisionStream) {
  FaultSpec spec;
  spec.short_rw = 0.5;
  spec.eintr = 0.3;
  spec.drop = 0.2;
  using Decision = std::tuple<bool, bool, bool>;
  const auto sample = [&](std::uint64_t seed) {
    FaultInjector::Scope scope(seed, spec);
    std::vector<Decision> out;
    for (int i = 0; i < 64; ++i) {
      const auto d = FaultInjector::next_io();
      out.emplace_back(d.eintr, d.drop, d.clamp);
    }
    return out;
  };
  EXPECT_EQ(sample(9), sample(9));    // reproducible given the seed
  EXPECT_NE(sample(9), sample(10));   // and actually seed-driven
}

TEST(FaultInjectorTest, ScopeRestoresDisabledState) {
  ASSERT_FALSE(FaultInjector::enabled());  // tests run without REPRO_FAULTS
  {
    FaultSpec spec;
    spec.eintr = 1.0;
    FaultInjector::Scope scope(1, spec);
    EXPECT_TRUE(FaultInjector::enabled());
  }
  EXPECT_FALSE(FaultInjector::enabled());
}

// --- net helpers under injection ----------------------------------------------

TEST(NetFaultTest, ShortWritesAndReadsReassemble) {
  SocketPair pair;
  FaultSpec spec;
  spec.short_rw = 1.0;  // every operation clamped to one byte
  FaultInjector::Scope scope(3, spec);

  const std::string message = "short pieces still make a whole line\n";
  const auto wr = rn::write_all(pair.fds[0], message, std::chrono::milliseconds(2000));
  EXPECT_EQ(wr.status, rn::IoStatus::kOk);
  EXPECT_EQ(wr.bytes, message.size());  // one byte at a time, all delivered
  EXPECT_EQ(read_exactly(pair.fds[1], message.size()), message);
}

TEST(NetFaultTest, EintrStormIsRetriedToCompletion) {
  SocketPair pair;
  FaultSpec spec;
  spec.eintr = 0.8;  // most operations interrupted once, then retried
  spec.short_rw = 0.5;
  FaultInjector::Scope scope(11, spec);

  const std::string message = "EINTR is not an error\n";
  const auto wr = rn::write_all(pair.fds[0], message, std::chrono::milliseconds(2000));
  EXPECT_EQ(wr.status, rn::IoStatus::kOk);
  EXPECT_EQ(read_exactly(pair.fds[1], message.size()), message);
}

TEST(NetFaultTest, InjectedDropSurfacesAsConnectionReset) {
  SocketPair pair;
  // Real bytes in flight first: the read path only consults the injector
  // once poll() reports the fd readable, so an idle socket would time out
  // instead of exercising the drop.
  ASSERT_EQ(rn::write_all(pair.fds[0], "payload", std::chrono::milliseconds(500)).status,
            rn::IoStatus::kOk);

  FaultSpec spec;
  spec.drop = 1.0;
  FaultInjector::Scope scope(5, spec);

  char buf[8];
  const auto rd = rn::read_some(pair.fds[1], buf, sizeof buf,
                                std::chrono::milliseconds(500));
  EXPECT_EQ(rd.status, rn::IoStatus::kError);
  EXPECT_EQ(rd.err, ECONNRESET);
  const auto wr = rn::write_all(pair.fds[0], "doomed", std::chrono::milliseconds(500));
  EXPECT_EQ(wr.status, rn::IoStatus::kError);
  EXPECT_EQ(wr.err, ECONNRESET);
}

// --- timeouts (no injection) --------------------------------------------------

TEST(NetTimeoutTest, ReadTimesOutOnASilentPeer) {
  SocketPair pair;
  char buf[8];
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = rn::read_some(pair.fds[0], buf, sizeof buf,
                               std::chrono::milliseconds(60));
  EXPECT_EQ(r.status, rn::IoStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(50));
}

TEST(NetTimeoutTest, WriteTimesOutOnceBuffersFillAndNobodyReads) {
  SocketPair pair;
  const std::string blob(1 << 22, 'x');  // far past any default socket buffer
  const auto r = rn::write_all(pair.fds[0], blob, std::chrono::milliseconds(80));
  EXPECT_EQ(r.status, rn::IoStatus::kTimeout);
  EXPECT_LT(r.bytes, blob.size());  // partial progress, then stalled
}

TEST(NetTimeoutTest, EofIsDistinctFromTimeout) {
  SocketPair pair;
  ::close(pair.fds[1]);
  pair.fds[1] = -1;
  char buf[8];
  const auto r = rn::read_some(pair.fds[0], buf, sizeof buf,
                               std::chrono::milliseconds(500));
  EXPECT_EQ(r.status, rn::IoStatus::kEof);
}

// --- SocketClient under faults ------------------------------------------------

TEST(ClientFaultTest, IoTimeoutTurnsASilentServerIntoRetryableUnavailable) {
  // A listener that accepts the TCP handshake (kernel backlog) but never
  // reads or writes: without the io_timeout this round trip would hang the
  // client forever.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  rs::ConnectOptions options;
  options.io_timeout = std::chrono::milliseconds(150);
  auto client = rs::SocketClient::connect_tcp(ntohs(addr.sin_port), options);
  ASSERT_TRUE(client.ok()) << client.error().message;
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = client.value().raw_round_trip(R"({"id":1,"type":"health"})");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, rc::ErrorCode::kUnavailable);
  EXPECT_TRUE(rc::is_retryable(reply.error().code));
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  ::close(listener);
}

TEST(ClientFaultTest, InjectedConnectRefusalRidesTheBackoffPath) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);

  {
    // Every attempt refused: the bounded backoff must exhaust and report.
    FaultSpec spec;
    spec.connect_fail = 1.0;
    FaultInjector::Scope scope(2, spec);
    rs::ConnectOptions retry;
    retry.attempts = 3;
    retry.initial_backoff = std::chrono::milliseconds(1);
    auto refused = rs::SocketClient::connect_tcp(port, retry);
    ASSERT_FALSE(refused.ok());
    EXPECT_NE(refused.error().message.find("attempt 3/3"), std::string::npos)
        << refused.error().message;
  }
  // Injection gone, same listener: the connect succeeds.
  auto fine = rs::SocketClient::connect_tcp(port);
  EXPECT_TRUE(fine.ok()) << (fine.ok() ? "" : fine.error().message);
  ::close(listener);
}
