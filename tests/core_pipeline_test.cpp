// core::FeaturePipeline and the Predictor source entry points: featurize ==
// whole-string extraction bit for bit, predict_source == featurize +
// predict_pareto, and predict_source_batch is deterministic across thread
// counts with input-order error reporting.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "clfront/features.hpp"
#include "common/thread_pool.hpp"
#include "core/measurement.hpp"
#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "gpusim/simulator.hpp"

namespace rc = repro::common;
namespace rcl = repro::clfront;
namespace rco = repro::core;
namespace rg = repro::gpusim;

namespace {

const char* kKernelA = R"CL(
kernel void stencil3(global float* src, global float* dst, int n) {
  int gid = get_global_id(0);
  float acc = 0.0f;
  for (int d = -1; d <= 1; d++) acc += src[clamp(gid + d, 0, n - 1)];
  dst[gid] = acc / 3.0f;
}
)CL";

const char* kKernelB = R"CL(
kernel void mix_int(global int* z) {
  int gid = get_global_id(0);
  z[gid] = (z[gid] * 17 + 3) % 1024 ^ (z[gid] >> 2);
}
)CL";

struct PoolGuard {
  ~PoolGuard() { rc::ThreadPool::set_global_threads(0); }
};

/// One small trained predictor shared by every test in this binary.
const rco::Predictor& predictor() {
  static const rco::Predictor instance = [] {
    const auto full = repro::benchgen::generate_training_suite().value();
    std::vector<repro::benchgen::MicroBenchmark> subset;
    for (std::size_t i = 0; i < full.size(); i += 8) subset.push_back(full[i]);
    auto built = rco::Predictor::builder()
                     .suite(std::move(subset))
                     .num_configs(8)
                     .build();
    EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().message);
    return std::move(built).take();
  }();
  return instance;
}

bool points_bitwise_equal(const std::vector<rco::PredictedPoint>& a,
                          const std::vector<rco::PredictedPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].config == b[i].config) || a[i].heuristic != b[i].heuristic ||
        std::memcmp(&a[i].speedup, &b[i].speedup, sizeof(double)) != 0 ||
        std::memcmp(&a[i].energy, &b[i].energy, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

TEST(FeaturePipelineTest, FeaturizeMatchesWholeStringExtraction) {
  const auto& pipeline = predictor().pipeline();
  for (const char* source : {kKernelA, kKernelB}) {
    const auto via_pipeline = pipeline.featurize(source);
    const auto direct = rcl::extract_features_from_source(source);
    ASSERT_TRUE(via_pipeline.ok()) << via_pipeline.error().message;
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(via_pipeline.value().kernel_name, direct.value().kernel_name);
    EXPECT_EQ(std::memcmp(via_pipeline.value().counts.data(),
                          direct.value().counts.data(),
                          sizeof(double) * rcl::kNumFeatures),
              0);
  }
}

TEST(FeaturePipelineTest, FeaturizeAllListsEveryKernel) {
  const std::string two = std::string(kKernelA) + kKernelB;
  const auto all = predictor().pipeline().featurize_all(two);
  ASSERT_TRUE(all.ok()) << all.error().message;
  ASSERT_EQ(all.value().size(), 2u);
  EXPECT_EQ(all.value()[0].kernel_name, "stencil3");
  EXPECT_EQ(all.value()[1].kernel_name, "mix_int");
}

TEST(FeaturePipelineTest, AssembleMatchesModelAssembler) {
  const auto features = predictor().pipeline().featurize(kKernelA);
  ASSERT_TRUE(features.ok());
  const auto config = predictor().domain().default_config();
  const auto via_pipeline = predictor().pipeline().assemble(features.value(), config);
  const auto via_model = predictor().model().assembler().assemble(features.value(), config);
  EXPECT_EQ(std::memcmp(via_pipeline.data(), via_model.data(),
                        sizeof(double) * rco::kFeatureDim),
            0);
}

TEST(FeaturePipelineTest, StreamBudgetGuardsFeaturize) {
  rcl::StreamOptions options;
  options.max_source_bytes = 16;
  const rco::FeaturePipeline tight(predictor().model().assembler(), options);
  const auto result = tight.featurize(kKernelA);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kParseError);
}

TEST(PredictSourceTest, MatchesFeaturizeThenPredictPareto) {
  const auto prediction = predictor().predict_source(kKernelA);
  ASSERT_TRUE(prediction.ok()) << prediction.error().message;
  EXPECT_EQ(prediction.value().kernel, "stencil3");

  const auto features = rcl::extract_features_from_source(kKernelA);
  ASSERT_TRUE(features.ok());
  const auto reference = predictor().predict_pareto(features.value());
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(points_bitwise_equal(prediction.value().pareto, reference.value()));

  // The legacy spelling returns the same points.
  const auto legacy = predictor().predict_pareto_source(kKernelA);
  ASSERT_TRUE(legacy.ok());
  EXPECT_TRUE(points_bitwise_equal(legacy.value(), reference.value()));
}

TEST(PredictSourceTest, BadSourceIsAnErrorNotACrash) {
  const auto result = predictor().predict_source("kernel void broken( {");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kParseError);
}

TEST(PredictSourceBatchTest, DeterministicAcrossThreadCounts) {
  PoolGuard guard;
  std::vector<rco::Predictor::SourceRequest> sources;
  for (int i = 0; i < 6; ++i) {
    sources.push_back({i % 2 == 0 ? kKernelA : kKernelB, ""});
  }

  rc::ThreadPool::set_global_threads(1);
  const auto serial = predictor().predict_source_batch(sources);
  ASSERT_TRUE(serial.ok()) << serial.error().message;
  ASSERT_EQ(serial.value().size(), sources.size());

  rc::ThreadPool::set_global_threads(8);
  const auto parallel = predictor().predict_source_batch(sources);
  ASSERT_TRUE(parallel.ok());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(serial.value()[i].kernel, parallel.value()[i].kernel);
    EXPECT_TRUE(points_bitwise_equal(serial.value()[i].pareto,
                                     parallel.value()[i].pareto))
        << i;
  }

  // Each slot equals the single-source call.
  const auto single = predictor().predict_source(sources[1].source);
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(points_bitwise_equal(serial.value()[1].pareto, single.value().pareto));
}

TEST(PredictSourceBatchTest, FirstFailingSourceByInputOrderFailsTheBatch) {
  std::vector<rco::Predictor::SourceRequest> sources = {
      {kKernelA, ""},
      {"kernel void broken( {", ""},                 // parse error (index 1)
      {kKernelB, "no_such_kernel"},                  // not-found (index 2)
  };
  const auto result = predictor().predict_source_batch(sources);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kParseError);  // index 1 wins
}

TEST(PredictSourceBatchTest, EmptyBatchIsInvalid) {
  const auto result =
      predictor().predict_source_batch(std::span<const rco::Predictor::SourceRequest>{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kInvalidArgument);
}
