// Tests for the GPU DVFS simulator: frequency tables (Fig. 4 topology),
// voltage curve, timing/power model properties and measurement determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gpusim/device.hpp"
#include "gpusim/freq_table.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/power_model.hpp"
#include "gpusim/simulator.hpp"
#include "gpusim/voltage.hpp"

namespace rg = repro::gpusim;

namespace {

rg::KernelProfile compute_profile() {
  rg::KernelProfile p;
  p.name = "compute_heavy";
  p.set_op(rg::OpClass::kFloatAdd, 400);
  p.set_op(rg::OpClass::kFloatMul, 400);
  p.set_op(rg::OpClass::kIntAdd, 100);
  p.set_op(rg::OpClass::kGlobalAccess, 4);
  p.work_items = 1 << 20;
  p.cache_hit_rate = 0.7;
  p.erratic = 0.0;
  return p;
}

rg::KernelProfile memory_profile() {
  rg::KernelProfile p;
  p.name = "memory_heavy";
  p.set_op(rg::OpClass::kIntAdd, 10);
  p.set_op(rg::OpClass::kGlobalAccess, 64);
  p.work_items = 1 << 21;
  p.cache_hit_rate = 0.05;
  p.erratic = 0.0;
  return p;
}

rg::SimOptions quiet_options() {
  rg::SimOptions o;
  o.measurement_noise = false;
  o.erratic_behaviour = false;
  return o;
}

}  // namespace

// --- frequency tables ------------------------------------------------------------

TEST(FreqTableTest, TitanXDomainCounts) {
  const auto d = rg::FrequencyDomain::titan_x();
  ASSERT_EQ(d.domains().size(), 4u);
  const auto* mem_L = d.find_domain(rg::MemLevel::kL);
  const auto* mem_l = d.find_domain(rg::MemLevel::kLow);
  const auto* mem_h = d.find_domain(rg::MemLevel::kHigh);
  const auto* mem_H = d.find_domain(rg::MemLevel::kH);
  ASSERT_NE(mem_L, nullptr);
  ASSERT_NE(mem_l, nullptr);
  ASSERT_NE(mem_h, nullptr);
  ASSERT_NE(mem_H, nullptr);
  // Paper §4.1: mem-L supports 6 core clocks, mem-l 71, mem-h/H 50 each.
  EXPECT_EQ(mem_L->actual_core_mhz.size(), 6u);
  EXPECT_EQ(mem_l->actual_core_mhz.size(), 71u);
  EXPECT_EQ(mem_h->actual_core_mhz.size(), 50u);
  EXPECT_EQ(mem_H->actual_core_mhz.size(), 50u);
  EXPECT_EQ(d.all_actual().size(), 177u);
}

TEST(FreqTableTest, TitanXMemoryClocksMatchPaper) {
  const auto d = rg::FrequencyDomain::titan_x();
  std::vector<int> mems;
  for (const auto& dom : d.domains()) mems.push_back(dom.mem_mhz);
  std::sort(mems.begin(), mems.end());
  EXPECT_EQ(mems, (std::vector<int>{405, 810, 3304, 3505}));
}

TEST(FreqTableTest, DefaultConfigIsActual) {
  const auto d = rg::FrequencyDomain::titan_x();
  EXPECT_EQ(d.default_config().core_mhz, 1001);
  EXPECT_EQ(d.default_config().mem_mhz, 3505);
  EXPECT_TRUE(d.is_actual(d.default_config()));
}

TEST(FreqTableTest, MemLCapsNear405) {
  const auto d = rg::FrequencyDomain::titan_x();
  const auto* mem_L = d.find_domain(rg::MemLevel::kL);
  EXPECT_LE(mem_L->actual_core_mhz.back(), 405);
}

TEST(FreqTableTest, GrayPointsReportedButNotActual) {
  const auto d = rg::FrequencyDomain::titan_x();
  const rg::FrequencyConfig gray{1391, 3505};
  EXPECT_TRUE(d.is_reported(gray));
  EXPECT_FALSE(d.is_actual(gray));
}

TEST(FreqTableTest, ResolveClampsGrayPoints) {
  const auto d = rg::FrequencyDomain::titan_x();
  const auto resolved = d.resolve({1391, 3505});
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().core_mhz, 1196);  // the effective cap
  EXPECT_EQ(resolved.value().mem_mhz, 3505);
}

TEST(FreqTableTest, ResolveIdentityOnActualConfigs) {
  const auto d = rg::FrequencyDomain::titan_x();
  for (const auto& c : d.all_actual()) {
    const auto r = d.resolve(c);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), c);
  }
}

TEST(FreqTableTest, ResolveRejectsUnknownClocks) {
  const auto d = rg::FrequencyDomain::titan_x();
  EXPECT_FALSE(d.resolve({1001, 1234}).ok());   // unknown memory clock
  EXPECT_FALSE(d.resolve({1000, 3505}).ok());   // off-ladder core clock
}

TEST(FreqTableTest, LevelLookup) {
  const auto d = rg::FrequencyDomain::titan_x();
  EXPECT_EQ(d.level_of(405).value(), rg::MemLevel::kL);
  EXPECT_EQ(d.level_of(3505).value(), rg::MemLevel::kH);
  EXPECT_FALSE(d.level_of(1).ok());
}

TEST(FreqTableTest, SampleConfigsBudgetAndCoverage) {
  const auto d = rg::FrequencyDomain::titan_x();
  const auto sample = d.sample_configs(40);
  EXPECT_EQ(sample.size(), 40u);
  // All six mem-L configs kept; all four levels represented.
  std::size_t per_level[4] = {0, 0, 0, 0};
  for (const auto& c : sample) {
    EXPECT_TRUE(d.is_actual(c));
    per_level[static_cast<int>(d.level_of(c.mem_mhz).value())]++;
  }
  EXPECT_EQ(per_level[0], 6u);
  EXPECT_GE(per_level[1], 8u);
  EXPECT_GE(per_level[2], 8u);
  EXPECT_GE(per_level[3], 8u);
}

TEST(FreqTableTest, SampleConfigsContainsDefault) {
  const auto d = rg::FrequencyDomain::titan_x();
  const auto sample = d.sample_configs(40);
  EXPECT_NE(std::find(sample.begin(), sample.end(), d.default_config()), sample.end());
}

TEST(FreqTableTest, TeslaP100SingleMemoryClock) {
  const auto d = rg::FrequencyDomain::tesla_p100();
  ASSERT_EQ(d.domains().size(), 1u);
  EXPECT_EQ(d.domains()[0].mem_mhz, 715);
  EXPECT_GT(d.domains()[0].actual_core_mhz.size(), 30u);
  EXPECT_TRUE(d.is_actual(d.default_config()));
}

TEST(FreqTableTest, MemLevelLabels) {
  EXPECT_STREQ(rg::mem_level_label(rg::MemLevel::kL), "Mem-L");
  EXPECT_STREQ(rg::mem_level_label(rg::MemLevel::kH), "Mem-H");
}

// --- voltage ---------------------------------------------------------------------

TEST(VoltageTest, MonotonicallyNonDecreasing) {
  const auto v = rg::VoltageCurve::titan_x();
  double prev = 0.0;
  for (int f = 100; f <= 1400; f += 10) {
    const double volts = v.volts_at(f);
    EXPECT_GE(volts, prev);
    prev = volts;
  }
}

TEST(VoltageTest, ClampsOutsideRange) {
  const auto v = rg::VoltageCurve::titan_x();
  EXPECT_DOUBLE_EQ(v.volts_at(1.0), v.volts_at(135.0));
  EXPECT_DOUBLE_EQ(v.volts_at(5000.0), v.volts_at(1392.0));
}

TEST(VoltageTest, InterpolatesBetweenKnots) {
  const rg::VoltageCurve v({{100.0, 1.0}, {200.0, 2.0}});
  EXPECT_DOUBLE_EQ(v.volts_at(150.0), 1.5);
}

TEST(VoltageTest, RejectsDegenerateKnots) {
  EXPECT_THROW(rg::VoltageCurve({{100.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(rg::VoltageCurve({{200.0, 1.0}, {100.0, 2.0}}), std::invalid_argument);
}

TEST(VoltageTest, MemoryRailSteps) {
  EXPECT_LT(rg::memory_volts(405), rg::memory_volts(3505));
}

// --- timing model ------------------------------------------------------------------

TEST(PerfModelTest, ComputeKernelScalesWithCoreClock) {
  const auto device = rg::DeviceModel::titan_x();
  const auto p = compute_profile();
  const auto slow = rg::compute_timing(device, p, {500, 3505});
  const auto fast = rg::compute_timing(device, p, {1000, 3505});
  EXPECT_GT(slow.total_s, fast.total_s * 1.8);  // near-linear scaling
}

TEST(PerfModelTest, MemoryKernelInsensitiveToCoreClock) {
  const auto device = rg::DeviceModel::titan_x();
  const auto p = memory_profile();
  const auto slow = rg::compute_timing(device, p, {559, 3505});
  const auto fast = rg::compute_timing(device, p, {1196, 3505});
  EXPECT_LT(slow.total_s / fast.total_s, 1.25);
}

TEST(PerfModelTest, MemoryKernelScalesWithMemoryClock) {
  const auto device = rg::DeviceModel::titan_x();
  const auto p = memory_profile();
  const auto high = rg::compute_timing(device, p, {1001, 3505});
  const auto low = rg::compute_timing(device, p, {1001, 810});
  EXPECT_GT(low.total_s, high.total_s * 1.8);
}

TEST(PerfModelTest, UtilizationsAreComplementary) {
  const auto device = rg::DeviceModel::titan_x();
  const auto t = rg::compute_timing(device, compute_profile(), {1001, 3505});
  EXPECT_GT(t.core_util, 0.8);
  EXPECT_LT(t.mem_util, 0.6);
  const auto m = rg::compute_timing(device, memory_profile(), {1001, 3505});
  EXPECT_GT(m.mem_util, 0.8);
}

TEST(PerfModelTest, RejectsBadInputs) {
  const auto device = rg::DeviceModel::titan_x();
  EXPECT_THROW((void)rg::compute_timing(device, compute_profile(), {0, 3505}),
               std::invalid_argument);
  EXPECT_THROW((void)rg::compute_timing(device, compute_profile(), {1001, 3505}, 0.0),
               std::invalid_argument);
}

TEST(PerfModelTest, DramEfficiencyPenalisesHighMemoryClock) {
  // Effective bandwidth per MHz is lower at mem-H than at mem-l, so the
  // time ratio is below the raw clock ratio (paper-calibrated behaviour).
  const auto device = rg::DeviceModel::titan_x();
  const auto p = memory_profile();
  const auto at_H = rg::compute_timing(device, p, {1001, 3505});
  const auto at_l = rg::compute_timing(device, p, {1001, 810});
  const double time_ratio = at_l.dram_s / at_H.dram_s;
  EXPECT_LT(time_ratio, 3505.0 / 810.0);
  EXPECT_GT(time_ratio, 1.5);
}

// --- power model --------------------------------------------------------------------

TEST(PowerModelTest, PowerIncreasesWithCoreClockForComputeKernels) {
  const auto device = rg::DeviceModel::titan_x();
  const auto p = compute_profile();
  const auto t_low = rg::compute_timing(device, p, {559, 3505});
  const auto t_high = rg::compute_timing(device, p, {1196, 3505});
  const double p_low = rg::compute_power(device, p, {559, 3505}, t_low).total();
  const double p_high = rg::compute_power(device, p, {1196, 3505}, t_high).total();
  EXPECT_GT(p_high, p_low * 1.3);
}

TEST(PowerModelTest, MemoryClockAddsPower) {
  const auto device = rg::DeviceModel::titan_x();
  const auto p = memory_profile();
  const auto t_H = rg::compute_timing(device, p, {1001, 3505});
  const auto t_l = rg::compute_timing(device, p, {1001, 810});
  const double at_H = rg::compute_power(device, p, {1001, 3505}, t_H).total();
  const double at_l = rg::compute_power(device, p, {1001, 810}, t_l).total();
  EXPECT_GT(at_H, at_l);
}

TEST(PowerModelTest, TotalsArePlausibleBoardPowers) {
  const auto device = rg::DeviceModel::titan_x();
  for (const auto& profile : {compute_profile(), memory_profile()}) {
    const auto t = rg::compute_timing(device, profile, {1001, 3505});
    const double watts = rg::compute_power(device, profile, {1001, 3505}, t).total();
    EXPECT_GT(watts, 40.0);
    EXPECT_LT(watts, 300.0);
  }
}

TEST(PowerModelTest, MixEnergyFactorOrdersByOpCost) {
  const auto device = rg::DeviceModel::titan_x();
  rg::KernelProfile cheap;
  cheap.set_op(rg::OpClass::kIntBitwise, 100);
  rg::KernelProfile pricey;
  pricey.set_op(rg::OpClass::kFloatDiv, 100);
  EXPECT_LT(rg::mix_energy_factor(device, cheap), rg::mix_energy_factor(device, pricey));
}

TEST(PowerModelTest, EmptyProfileHasZeroMixFactor) {
  const auto device = rg::DeviceModel::titan_x();
  rg::KernelProfile empty;
  EXPECT_DOUBLE_EQ(rg::mix_energy_factor(device, empty), 0.0);
}

// --- simulator ------------------------------------------------------------------------

TEST(SimulatorTest, MeasurementsAreDeterministic) {
  const rg::GpuSimulator sim(rg::DeviceModel::titan_x());
  const auto p = compute_profile();
  const auto a = sim.run_at(p, {1001, 3505});
  const auto b = sim.run_at(p, {1001, 3505});
  EXPECT_DOUBLE_EQ(a.time_ms, b.time_ms);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(SimulatorTest, SpeedupAtDefaultIsOne) {
  const rg::GpuSimulator sim(rg::DeviceModel::titan_x());
  const auto p = compute_profile();
  EXPECT_NEAR(sim.speedup(p, {1001, 3505}), 1.0, 1e-9);
  EXPECT_NEAR(sim.normalized_energy(p, {1001, 3505}), 1.0, 1e-9);
}

TEST(SimulatorTest, RunValidatesAndClampsLikeNvml) {
  const rg::GpuSimulator sim(rg::DeviceModel::titan_x());
  const auto p = compute_profile();
  const auto gray = sim.run(p, {1391, 3505});
  ASSERT_TRUE(gray.ok());
  EXPECT_EQ(gray.value().config.core_mhz, 1196);
  EXPECT_FALSE(sim.run(p, {1001, 1234}).ok());
}

TEST(SimulatorTest, EnergyParabolaHasInteriorMinimumForComputeKernels) {
  rg::GpuSimulator sim(rg::DeviceModel::titan_x(), quiet_options());
  const auto p = compute_profile();
  const auto* dom = sim.freq().find_domain(rg::MemLevel::kH);
  double best_e = 1e18;
  int best_core = 0;
  for (int core : dom->actual_core_mhz) {
    const double e = sim.normalized_energy(p, {core, dom->mem_mhz});
    if (e < best_e) {
      best_e = e;
      best_core = core;
    }
  }
  // Paper §1.1: the minimum sits in a mid-frequency window, not at an edge.
  EXPECT_GT(best_core, dom->actual_core_mhz.front());
  EXPECT_LT(best_core, dom->actual_core_mhz.back());
  EXPECT_GT(best_core, 700);
  EXPECT_LT(best_core, 1100);
  EXPECT_LT(best_e, 1.0);
}

TEST(SimulatorTest, NoiseOffMatchesAnalyticalModel) {
  rg::GpuSimulator sim(rg::DeviceModel::titan_x(), quiet_options());
  const auto device = rg::DeviceModel::titan_x();
  const auto p = compute_profile();
  const auto m = sim.run_at(p, {1001, 3505});
  const auto t = rg::compute_timing(device, p, {1001, 3505});
  EXPECT_NEAR(m.time_ms, t.total_s * 1e3, 1e-9);
}

TEST(SimulatorTest, ErraticBehaviourOnlyAtLowMemoryClocks) {
  rg::SimOptions with_err;
  with_err.measurement_noise = false;
  with_err.erratic_behaviour = true;
  rg::GpuSimulator noisy(rg::DeviceModel::titan_x(), with_err);
  rg::GpuSimulator clean(rg::DeviceModel::titan_x(), quiet_options());
  auto p = compute_profile();
  p.erratic = 1.0;
  // High memory clocks: identical.
  EXPECT_DOUBLE_EQ(noisy.run_at(p, {1001, 3505}).time_ms,
                   clean.run_at(p, {1001, 3505}).time_ms);
  // Low memory clock: systematically shifted.
  EXPECT_NE(noisy.run_at(p, {403, 405}).time_ms, clean.run_at(p, {403, 405}).time_ms);
}

TEST(SimulatorTest, CharacterizeCoversAllConfigs) {
  const rg::GpuSimulator sim(rg::DeviceModel::titan_x());
  const auto configs = sim.freq().sample_configs(40);
  const auto points = sim.characterize(compute_profile(), configs);
  ASSERT_EQ(points.size(), configs.size());
  for (const auto& pt : points) {
    EXPECT_GT(pt.speedup, 0.0);
    EXPECT_GT(pt.norm_energy, 0.0);
    EXPECT_LT(pt.norm_energy, 3.0);
  }
}

TEST(SimulatorTest, PowerSamplingWindowAffectsShortKernels) {
  // A microscopic kernel must still return a positive, finite measurement
  // (the 62.5 Hz sampling emulation kicks in).
  const rg::GpuSimulator sim(rg::DeviceModel::titan_x());
  rg::KernelProfile tiny = compute_profile();
  tiny.work_items = 32;
  const auto m = sim.run_at(tiny, {1001, 3505});
  EXPECT_GT(m.time_ms, 0.0);
  EXPECT_GT(m.avg_power_w, 1.0);
  EXPECT_TRUE(std::isfinite(m.energy_j));
}
