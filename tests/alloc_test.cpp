// The zero-allocation serve hot path, proven by counting: this TU includes
// common/alloc_hook.hpp, which REPLACES the global operator new/delete for
// this binary with counting wrappers. The allocation regression test drives
// the worker's per-request wire loop — splitter → parse (arena) → reply
// serialization (pooled buffer) → arena reset — exactly as serve_connection
// does, and asserts the steady state performs ZERO heap allocations per
// request, for both framings. Also the Arena / ArenaAllocator / BufferPool
// unit tests (growth, reset, size classes, lease RAII, stats).
//
// The counting loop here is single-threaded by design: the real server's
// cross-thread handoff (promise/future per request) allocates by necessity,
// so the contract this test locks is the per-request *protocol* path — the
// part the arena and pools made allocation-free.
#include "common/alloc_hook.hpp"  // must be included exactly once per binary

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "clfront/features.hpp"
#include "common/arena.hpp"
#include "common/buffer_pool.hpp"
#include "core/predictor.hpp"
#include "serve/protocol.hpp"

namespace rc = repro::common;
namespace rcl = repro::clfront;
namespace rco = repro::core;
namespace rs = repro::serve;
namespace rb = repro::serve::binary;
namespace hook = repro::common::alloc_hook;

namespace {

// --- Arena ------------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  rc::Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(16, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  // Disjoint: writing one block must not clobber another.
  std::memset(a, 0xAA, 3);
  std::memset(b, 0xBB, 8);
  std::memset(c, 0xCC, 16);
  EXPECT_EQ(static_cast<unsigned char*>(a)[0], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(b)[7], 0xBB);
  EXPECT_EQ(static_cast<unsigned char*>(c)[15], 0xCC);
}

TEST(Arena, GrowsPastOneChunkAndTracksPeak) {
  rc::Arena arena;
  // Far past the default chunk: forces chunked growth.
  for (int i = 0; i < 64; ++i) {
    void* p = arena.allocate(1024, 8);
    ASSERT_NE(p, nullptr);
    std::memset(p, i, 1024);
  }
  EXPECT_GE(arena.used_bytes(), 64u * 1024u);
  EXPECT_GE(arena.peak_used_bytes(), arena.used_bytes());
  EXPECT_GE(arena.reserved_bytes(), arena.used_bytes());
}

TEST(Arena, ResetReusesMemoryWithoutNewAllocations) {
  rc::Arena arena;
  (void)arena.allocate(32 * 1024, 8);  // establish a large chunk
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  const std::uint64_t before = hook::allocations();
  // Everything after reset fits the retained chunk: no heap traffic.
  for (int i = 0; i < 16; ++i) (void)arena.allocate(1024, 8);
  EXPECT_EQ(hook::allocations() - before, 0u);
  EXPECT_GE(arena.peak_used_bytes(), 32u * 1024u);  // peak survives reset
}

TEST(ArenaAllocator, BacksStdContainersAndFallsBackWithoutArena) {
  rc::Arena arena;
  {
    std::vector<int, rc::ArenaAllocator<int>> v{rc::ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_EQ(v[999], 999);
    EXPECT_GT(arena.used_bytes(), 0u);
  }
  // Null-arena allocator: plain heap, still correct.
  std::vector<int, rc::ArenaAllocator<int>> heap_backed;
  for (int i = 0; i < 100; ++i) heap_backed.push_back(i);
  EXPECT_EQ(heap_backed[99], 99);
  // Equality follows the arena identity.
  rc::ArenaAllocator<int> a1(&arena);
  rc::ArenaAllocator<int> a2(&arena);
  rc::ArenaAllocator<int> null1;
  EXPECT_TRUE(a1 == a2);
  EXPECT_FALSE(a1 == null1);
}

// --- BufferPool -------------------------------------------------------------

TEST(BufferPool, LeaseRoundTripReusesCapacity) {
  rc::BufferPool pool;
  const char* probe = nullptr;
  {
    auto lease = pool.acquire(1024);
    lease->assign("hello");
    lease->reserve(1024);
    probe = lease->data();
  }  // returned to the pool, cleared
  auto again = pool.acquire(1024);
  EXPECT_TRUE(again->empty());           // give_back clears content
  EXPECT_GE(again->capacity(), 1024u);   // ... but keeps the capacity
  EXPECT_EQ(again->data(), probe);       // same underlying buffer came back
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.reuses, 1u);
}

TEST(BufferPool, DiscardsBeyondTheClassBound) {
  rc::BufferPool pool(/*max_buffers_per_class=*/2);
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    auto c = pool.acquire();
    a->reserve(64);
    b->reserve(64);
    c->reserve(64);
  }  // three give-backs into a class capped at two
  const auto stats = pool.stats();
  EXPECT_EQ(stats.discards, 1u);
  EXPECT_LE(stats.pooled_buffers, 2u);
}

TEST(BufferPool, DetachedLeaseIsAPlainString) {
  rc::BufferPool::Lease detached;  // no pool behind it
  detached->assign("standalone");
  EXPECT_EQ(*detached, "standalone");
}

TEST(BufferPool, SteadyStateAcquireReleaseIsAllocationFree) {
  rc::BufferPool pool;
  { auto warm = pool.acquire(4096); warm->reserve(4096); }
  const std::uint64_t before = hook::allocations();
  for (int i = 0; i < 100; ++i) {
    auto lease = pool.acquire(4096);
    lease->append("x");
  }
  EXPECT_EQ(hook::allocations() - before, 0u);
}

// --- the allocation regression gate -----------------------------------------

/// One decoded-request → serialized-reply cycle, the per-message work of
/// serve_connection + its writer, minus the cross-thread handoff. Returns
/// false on any protocol failure (EXPECTs allocate; keep them outside the
/// counted loop).
bool pump_one(rs::MessageSplitter& splitter, rc::Arena& arena,
              std::string_view wire_bytes, bool binary,
              const rco::Predictor::KernelPrediction& prediction,
              std::string& reply) {
  splitter.feed(wire_bytes);
  bool served = false;
  for (;;) {
    auto next = splitter.next();
    if (!next.ok()) return false;
    if (!next.value().has_value()) break;
    auto request = binary ? rb::parse_request(next.value()->payload)
                          : rs::parse_request(next.value()->payload, &arena);
    if (!request.ok()) return false;
    if (!request.value().features.has_value()) return false;
    reply.clear();
    if (binary) {
      rb::format_prediction_frame_into(reply, request.value().id, prediction);
    } else {
      rs::format_response_into(reply, request.value().id, prediction);
      reply.push_back('\n');
    }
    arena.reset();
    served = true;
  }
  return served;
}

class AllocationRegressionTest : public ::testing::TestWithParam<bool> {};

TEST_P(AllocationRegressionTest, ServeHotPathIsAllocationFreeAtSteadyState) {
  const bool binary = GetParam();

  // A realistic predict request: full feature vector, SSO-sized kernel name.
  rs::WireRequest request;
  request.id = 7;
  request.kind = rs::RequestKind::kPredict;
  request.kernel = "k0";
  std::array<double, rcl::kNumFeatures> counts{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<double>(i) * 3.25 + 0.5;
  }
  request.features = counts;

  std::string wire_bytes;
  if (binary) {
    wire_bytes = rb::format_request_frame(request);
  } else {
    wire_bytes = rs::format_request(request);
    wire_bytes.push_back('\n');
  }

  // A realistic reply: a kernel name and a handful of Pareto points.
  rco::Predictor::KernelPrediction prediction;
  prediction.kernel = "k0";
  for (int i = 0; i < 6; ++i) {
    rco::PredictedPoint point;
    point.config = {500 + 100 * i, 3505};
    point.speedup = 1.0 + 0.125 * i;
    point.energy = 1.0 - 0.0625 * i;
    point.heuristic = i == 5;
    prediction.pareto.push_back(point);
  }

  rc::BufferPool pool;
  rs::MessageSplitter splitter(1 << 20, /*accept_binary=*/true, &pool);
  rc::Arena arena;
  auto reply_lease = pool.acquire();
  std::string& reply = *reply_lease;

  // Warmup: grows the splitter buffer, the arena chunk, and the reply
  // buffer to their steady-state capacities.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pump_one(splitter, arena, wire_bytes, binary, prediction, reply));
  }

  const std::string expected_reply = reply;
  const std::uint64_t allocs_before = hook::allocations();
  const std::uint64_t frees_before = hook::deallocations();
  bool all_served = true;
  constexpr int kIters = 256;
  for (int i = 0; i < kIters; ++i) {
    all_served &= pump_one(splitter, arena, wire_bytes, binary, prediction, reply);
  }
  const std::uint64_t allocs = hook::allocations() - allocs_before;
  const std::uint64_t frees = hook::deallocations() - frees_before;

  EXPECT_TRUE(all_served);
  EXPECT_EQ(allocs, 0u) << "steady-state serve hot path allocated "
                        << allocs << " times over " << kIters << " requests ("
                        << (binary ? "binary" : "json") << " framing)";
  EXPECT_EQ(frees, 0u);
  EXPECT_EQ(reply, expected_reply) << "pooling changed reply bytes";
}

INSTANTIATE_TEST_SUITE_P(BothFramings, AllocationRegressionTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "binary" : "json";
                         });

}  // namespace
