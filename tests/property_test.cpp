// Cross-module property tests: parameterized sweeps over the full benchmark
// suite and frequency domain that pin down the invariants the experiments
// rely on — monotone physics, bounded objectives, deterministic measurement,
// hypervolume consistency against a Monte-Carlo estimate, and feature
// stability of the frontend across semantic-preserving rewrites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "clfront/features.hpp"
#include "common/rng.hpp"
#include "gpusim/simulator.hpp"
#include "kernels/kernels.hpp"
#include "pareto/hypervolume.hpp"
#include "pareto/pareto.hpp"

namespace rg = repro::gpusim;
namespace rk = repro::kernels;
namespace rp = repro::pareto;
namespace rc = repro::common;

namespace {

const rg::GpuSimulator& noiseless_sim() {
  static const rg::GpuSimulator sim(rg::DeviceModel::titan_x(),
                                    rg::SimOptions{.measurement_noise = false,
                                                   .erratic_behaviour = false});
  return sim;
}

const rg::GpuSimulator& noisy_sim() {
  static const rg::GpuSimulator sim(rg::DeviceModel::titan_x());
  return sim;
}

}  // namespace

// --- per-(benchmark, memory level) physics sweep ------------------------------------

class KernelLevelSweep
    : public ::testing::TestWithParam<std::tuple<int, rg::MemLevel>> {
 protected:
  const rk::TestBenchmark& benchmark() const {
    return rk::test_suite()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  }
  const rg::MemoryClockDomain& domain() const {
    return *noiseless_sim().freq().find_domain(std::get<1>(GetParam()));
  }
};

TEST_P(KernelLevelSweep, TimeIsNonIncreasingInCoreClock) {
  // Without noise, raising the core clock at fixed memory clock can never
  // slow a kernel down.
  const auto& dom = domain();
  double prev = 1e18;
  for (int core : dom.actual_core_mhz) {
    const auto m = noiseless_sim().run_at(benchmark().profile, {core, dom.mem_mhz});
    EXPECT_LE(m.time_ms, prev * (1.0 + 1e-9))
        << benchmark().name << " at " << core << " MHz";
    prev = m.time_ms;
  }
}

TEST_P(KernelLevelSweep, PowerIsNonDecreasingInCoreClock) {
  const auto& dom = domain();
  double prev = 0.0;
  for (int core : dom.actual_core_mhz) {
    const auto m = noiseless_sim().run_at(benchmark().profile, {core, dom.mem_mhz});
    EXPECT_GE(m.avg_power_w, prev * (1.0 - 1e-9))
        << benchmark().name << " at " << core << " MHz";
    prev = m.avg_power_w;
  }
}

TEST_P(KernelLevelSweep, MeasurementsAreStrictlyDeterministic) {
  const auto& dom = domain();
  const rg::FrequencyConfig config{dom.actual_core_mhz.back(), dom.mem_mhz};
  const auto a = noisy_sim().run_at(benchmark().profile, config);
  const auto b = noisy_sim().run_at(benchmark().profile, config);
  EXPECT_DOUBLE_EQ(a.time_ms, b.time_ms) << benchmark().name;
  EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w) << benchmark().name;
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j) << benchmark().name;
}

TEST_P(KernelLevelSweep, ObjectivesStayInPlottableRange) {
  // The paper's figures plot speedup in [0, 1.4] and energy in [0.4, 2.0];
  // measured points must stay in a slightly padded box.
  const auto& dom = domain();
  std::vector<rg::FrequencyConfig> configs;
  for (int core : dom.actual_core_mhz) configs.push_back({core, dom.mem_mhz});
  for (const auto& p : noisy_sim().characterize(benchmark().profile, configs)) {
    EXPECT_GT(p.speedup, 0.03) << benchmark().name;
    EXPECT_LT(p.speedup, 1.5) << benchmark().name;
    EXPECT_GT(p.norm_energy, 0.25) << benchmark().name;
    EXPECT_LT(p.norm_energy, 2.2) << benchmark().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllLevels, KernelLevelSweep,
    ::testing::Combine(::testing::Range(0, static_cast<int>(rk::kNumTestBenchmarks)),
                       ::testing::Values(rg::MemLevel::kL, rg::MemLevel::kLow,
                                         rg::MemLevel::kHigh, rg::MemLevel::kH)));

// --- memory-clock monotonicity --------------------------------------------------------

class MemoryScalingSweep : public ::testing::TestWithParam<int> {};

TEST_P(MemoryScalingSweep, TimeIsNonIncreasingInMemoryClock) {
  // At the shared 403-ish core clock... the four levels share no single core
  // clock, so compare at each level's top clock <= 403 MHz (supported by all).
  const auto& benchmark = rk::test_suite()[static_cast<std::size_t>(GetParam())];
  double prev_time = 1e18;
  for (int mem : {405, 810, 3304, 3505}) {
    const auto* dom = noiseless_sim().freq().find_domain(mem);
    int core = dom->actual_core_mhz.front();
    for (int c : dom->actual_core_mhz) {
      if (c <= 403) core = c;
    }
    const auto m = noiseless_sim().run_at(benchmark.profile, {core, mem});
    // Only enforce monotonicity when the core clock is comparable.
    if (core <= 403) {
      EXPECT_LE(m.time_ms, prev_time * 1.001) << benchmark.name << " mem " << mem;
      prev_time = m.time_ms;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, MemoryScalingSweep,
                         ::testing::Range(0, static_cast<int>(rk::kNumTestBenchmarks)));

// --- hypervolume vs Monte-Carlo --------------------------------------------------------

class HypervolumeMonteCarlo : public ::testing::TestWithParam<int> {};

TEST_P(HypervolumeMonteCarlo, MatchesSampledEstimate) {
  rc::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<rp::Point> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(0.05, 1.3), rng.uniform(0.4, 1.9),
                   static_cast<std::uint32_t>(i)});
  }
  const rp::ReferencePoint ref{0.0, 2.0};
  const double exact = rp::hypervolume(pts, ref);

  // Monte-Carlo estimate over the reference box [0, s_max] x [e_min_box, 2].
  const double s_hi = 1.3;
  constexpr int kSamples = 200000;
  int inside = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double s = rng.uniform(0.0, s_hi);
    const double e = rng.uniform(0.0, ref.energy);
    for (const auto& p : pts) {
      if (p.speedup >= s && p.energy <= e) {
        ++inside;
        break;
      }
    }
  }
  const double estimate =
      static_cast<double>(inside) / kSamples * (s_hi * ref.energy);
  EXPECT_NEAR(exact, estimate, 0.03) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypervolumeMonteCarlo, ::testing::Values(1, 2, 3, 4, 5));

// --- frontend stability ------------------------------------------------------------------

TEST(FrontendPropertyTest, WhitespaceAndCommentsDoNotChangeFeatures) {
  const std::string compact =
      "kernel void k(global float* a){float x=a[0];a[1]=x*x+1.0f;}";
  const std::string airy = R"(
// a comment
kernel void k(global float* a) {
  /* block comment */
  float x = a[0];
  a[1] = x * x + 1.0f;   // trailing comment
}
)";
  const auto f1 = repro::clfront::extract_features_from_source(compact);
  const auto f2 = repro::clfront::extract_features_from_source(airy);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f1.value().counts, f2.value().counts);
}

TEST(FrontendPropertyTest, DeclarationSplittingDoesNotChangeFeatures) {
  const auto joint = repro::clfront::extract_features_from_source(
      "kernel void k(float a) { float x = a + a, y = a * a; float z = x + y; }");
  const auto split = repro::clfront::extract_features_from_source(
      "kernel void k(float a) { float x = a + a; float y = a * a; float z = x + y; }");
  ASSERT_TRUE(joint.ok());
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(joint.value().counts, split.value().counts);
}

TEST(FrontendPropertyTest, TestSuiteFeaturesAreAllNormalizable) {
  for (const auto& benchmark : rk::test_suite()) {
    const auto f = rk::benchmark_features(benchmark);
    ASSERT_TRUE(f.ok()) << benchmark.name;
    const auto norm = f.value().normalized();
    double sum = 0.0;
    for (double v : norm) {
      EXPECT_GE(v, 0.0) << benchmark.name;
      EXPECT_LE(v, 1.0) << benchmark.name;
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << benchmark.name;
  }
}

// --- seed isolation ------------------------------------------------------------------------

TEST(SeedPropertyTest, DifferentSimulatorSeedsChangeNoiseNotPhysics) {
  const rg::GpuSimulator sim_a(rg::DeviceModel::titan_x(), rg::SimOptions{.seed = 1});
  const rg::GpuSimulator sim_b(rg::DeviceModel::titan_x(), rg::SimOptions{.seed = 2});
  const auto* knn = rk::find_benchmark("k-NN");
  const rg::FrequencyConfig config{754, 3505};
  const auto a = sim_a.run_at(knn->profile, config);
  const auto b = sim_b.run_at(knn->profile, config);
  EXPECT_NE(a.time_ms, b.time_ms);                      // noise differs
  EXPECT_NEAR(a.time_ms, b.time_ms, 0.1 * a.time_ms);   // physics agrees
  EXPECT_NEAR(a.avg_power_w, b.avg_power_w, 0.15 * a.avg_power_w);
}

TEST(SeedPropertyTest, NormalizedObjectivesUnaffectedByWorkItemScaling) {
  // Doubling the launch size scales time and energy but not the normalized
  // objectives (noise keyed by kernel name stays fixed).
  auto profile = rk::find_benchmark("Convolution")->profile;
  const rg::FrequencyConfig config{819, 3304};
  const double s1 = noiseless_sim().speedup(profile, config);
  profile.work_items *= 2;
  const double s2 = noiseless_sim().speedup(profile, config);
  EXPECT_NEAR(s1, s2, 0.01);
}
