// Streaming featurization: the chunk-size-invariance contract. Feeding a
// source through SourceFeeder in chunks of ANY size — including one byte at
// a time — must produce bit-identical features, the same kernel set, and
// the same errors as the whole-string path (extract_features_from_source).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "clfront/features.hpp"
#include "clfront/parser.hpp"
#include "clfront/stream.hpp"

namespace rcl = repro::clfront;
namespace rc = repro::common;

namespace {

/// A workout for the lexer and the function splitter: comments (line/block,
/// some spanning lines), a preprocessor line, float/hex/suffixed literals,
/// vector literals, helpers called before AND after their definition, and
/// two kernels.
const char* kMultiKernelSource = R"CL(
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
// scale by a constant /* not a block comment opener inside a line comment
float helper_before(float v) { return v * 2.0f + 1.0e-3f; }

kernel void first_kernel(global float* x, global float* y, int n) {
  int gid = get_global_id(0);
  /* block
     comment */
  float a = helper_before(x[gid]);
  float b = helper_after(a);        // forward reference
  float4 v = (float4)(a, b, 0.5f, 1.25f);
  y[gid] = dot(v, v) + native_sin(a) / (b + 0x10);
}

float helper_after(float v) { return v - 3u; }

kernel void second_kernel(global int* z) {
  int gid = get_global_id(0);
  for (int i = 0; i < 8; i++) z[gid] = z[gid] << 1 | (z[gid] & 1);
}
)CL";

bool features_bitwise_equal(const rcl::StaticFeatures& a, const rcl::StaticFeatures& b) {
  return a.kernel_name == b.kernel_name &&
         std::memcmp(a.counts.data(), b.counts.data(),
                     sizeof(double) * rcl::kNumFeatures) == 0;
}

}  // namespace

TEST(SourceFeederTest, ChunkSizeInvariance) {
  const std::string source = kMultiKernelSource;
  for (const char* kernel : {"", "first_kernel", "second_kernel"}) {
    const auto whole = rcl::extract_features_from_source(source, kernel);
    ASSERT_TRUE(whole.ok()) << whole.error().message;
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                    std::size_t{5}, std::size_t{7}, std::size_t{64},
                                    std::size_t{4096}, source.size()}) {
      const auto streamed = rcl::extract_features_chunked(source, chunk, kernel);
      ASSERT_TRUE(streamed.ok())
          << "chunk=" << chunk << ": " << streamed.error().message;
      EXPECT_TRUE(features_bitwise_equal(whole.value(), streamed.value()))
          << "chunk=" << chunk << " kernel='" << kernel << "'\nwhole:    "
          << whole.value().to_string() << "\nstreamed: "
          << streamed.value().to_string();
    }
  }
}

TEST(SourceFeederTest, KernelFeaturesListsKernelsInOrder) {
  rcl::SourceFeeder feeder;
  ASSERT_TRUE(feeder.feed(kMultiKernelSource).ok());
  ASSERT_TRUE(feeder.finish().ok());
  const auto kernels = feeder.kernel_features();
  ASSERT_TRUE(kernels.ok()) << kernels.error().message;
  ASSERT_EQ(kernels.value().size(), 2u);
  EXPECT_EQ(kernels.value()[0].kernel_name, "first_kernel");
  EXPECT_EQ(kernels.value()[1].kernel_name, "second_kernel");
  const auto whole = rcl::extract_features_from_source(kMultiKernelSource,
                                                       "second_kernel");
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(features_bitwise_equal(whole.value(), kernels.value()[1]));
}

TEST(SourceFeederTest, PendingBufferStaysBoundedOnLargeInput) {
  // 400 small functions, each complete: the feeder must summarize and
  // release them as they stream — the pending buffer never holds more than
  // a chunk plus one unfinished token, and never the whole source.
  std::string source;
  for (int i = 0; i < 400; ++i) {
    source += "float fn" + std::to_string(i) + "(float v) { return v * " +
              std::to_string(i) + ".5f; /* filler comment to fatten the source " +
              std::string(64, 'x') + " */ }\n";
  }
  source += "kernel void big(global float* x) { x[0] = fn399(fn0(x[0])); }\n";

  rcl::SourceFeeder feeder;
  constexpr std::size_t kChunk = 256;
  for (std::size_t off = 0; off < source.size(); off += kChunk) {
    ASSERT_TRUE(feeder.feed(std::string_view(source).substr(off, kChunk)).ok());
  }
  ASSERT_TRUE(feeder.finish().ok());
  EXPECT_EQ(feeder.bytes_fed(), source.size());
  EXPECT_LT(feeder.peak_pending_bytes(), std::size_t{2048});

  const auto whole = rcl::extract_features_from_source(source);
  const auto streamed = feeder.features();
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(streamed.ok()) << streamed.error().message;
  EXPECT_TRUE(features_bitwise_equal(whole.value(), streamed.value()));
}

TEST(SourceFeederTest, ErrorParityWithWholeStringPath) {
  // Lexical, parse, lowering, kernel-lookup, and cycle errors must agree
  // with the whole-string path — same code, same message — at any chunking.
  const struct Case {
    const char* name;
    const char* source;
  } cases[] = {
      {"lex_unterminated_comment", "kernel void f(global int* x) { x[0] = 1; } /* oops"},
      {"lex_bad_char", "kernel void f(global int* x) { x[0] = 1 @ 2; }"},
      {"parse_missing_paren", "kernel void f(global int* x { x[0] = 1; }"},
      {"lower_unknown_call", "kernel void f(global int* x) { x[0] = nosuch(1); }"},
      {"lower_undeclared_var", "kernel void f(global int* x) { x[0] = y; }"},
      {"recursive_chain",
       "float a(float v) { return b(v); } float b(float v) { return a(v); } "
       "kernel void f(global float* x) { x[0] = a(x[0]); }"},
  };
  for (const auto& c : cases) {
    const auto whole = rcl::extract_features_from_source(c.source);
    ASSERT_FALSE(whole.ok()) << c.name;
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{9}, std::size_t{1024}}) {
      const auto streamed = rcl::extract_features_chunked(c.source, chunk);
      ASSERT_FALSE(streamed.ok()) << c.name << " chunk=" << chunk;
      EXPECT_EQ(static_cast<int>(streamed.error().code),
                static_cast<int>(whole.error().code))
          << c.name << " chunk=" << chunk;
      EXPECT_EQ(streamed.error().message, whole.error().message)
          << c.name << " chunk=" << chunk;
    }
  }
}

TEST(SourceFeederTest, UnknownKernelNameMatchesWholeString) {
  const auto whole =
      rcl::extract_features_from_source(kMultiKernelSource, "missing_kernel");
  const auto streamed =
      rcl::extract_features_chunked(kMultiKernelSource, 16, "missing_kernel");
  ASSERT_FALSE(whole.ok());
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.error().message, whole.error().message);
  // And a helper is findable by name but is not a kernel — both paths
  // resolve it (extract_features allows any function by name).
  const auto helper_whole =
      rcl::extract_features_from_source(kMultiKernelSource, "helper_after");
  const auto helper_streamed =
      rcl::extract_features_chunked(kMultiKernelSource, 16, "helper_after");
  ASSERT_TRUE(helper_whole.ok());
  ASSERT_TRUE(helper_streamed.ok());
  EXPECT_TRUE(features_bitwise_equal(helper_whole.value(), helper_streamed.value()));
}

TEST(SourceFeederTest, SourceBudgetIsEnforced) {
  rcl::StreamOptions options;
  options.max_source_bytes = 64;
  rcl::SourceFeeder feeder(options);
  const std::string big(65, ' ');
  const auto st = feeder.feed(big);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, rc::ErrorCode::kParseError);
  // The error is sticky: finish() and features() report it too.
  EXPECT_FALSE(feeder.finish().ok());
  EXPECT_FALSE(feeder.features().ok());
}

TEST(SourceFeederTest, FeedAfterFinishIsRejected) {
  rcl::SourceFeeder feeder;
  ASSERT_TRUE(feeder.feed("kernel void f(global int* x) { x[0] = 1; }").ok());
  ASSERT_TRUE(feeder.finish().ok());
  EXPECT_FALSE(feeder.feed("more").ok());
  EXPECT_TRUE(feeder.finish().ok());  // idempotent verdict
}

TEST(SourceFeederTest, FeaturesBeforeFinishIsRejected) {
  rcl::SourceFeeder feeder;
  ASSERT_TRUE(feeder.feed("kernel void f(global int* x) { x[0] = 1; }").ok());
  EXPECT_FALSE(feeder.features().ok());
}

// --- parser hardening (deep nesting must be a parse error, not a crash) ------

TEST(ParserDepthBudgetTest, DeeplyNestedParensFailGracefully) {
  const std::string deep(4096, '(');
  const std::string source = "kernel void f(global float* x) { x[0] = " + deep +
                             "1.0f" + std::string(4096, ')') + "; }";
  const auto result = rcl::extract_features_from_source(source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kParseError);
  EXPECT_NE(result.error().message.find("depth budget"), std::string::npos);
  // The streamed path reports the identical error.
  const auto streamed = rcl::extract_features_chunked(source, 37);
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.error().message, result.error().message);
}

TEST(ParserDepthBudgetTest, DeeplyNestedBracesFailGracefully) {
  std::string source = "kernel void f(global float* x) ";
  source += std::string(4096, '{');
  source += "x[0] = 1.0f;";
  source += std::string(4096, '}');
  const auto result = rcl::extract_features_from_source(source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, rc::ErrorCode::kParseError);
  EXPECT_NE(result.error().message.find("depth budget"), std::string::npos);
}

TEST(ParserDepthBudgetTest, ModerateNestingStillParses) {
  const int depth = rcl::kMaxNestingDepth / 4;
  const std::string source = "kernel void f(global float* x) { x[0] = " +
                             std::string(depth, '(') + "1.0f" +
                             std::string(depth, ')') + "; }";
  EXPECT_TRUE(rcl::extract_features_from_source(source).ok());
}
