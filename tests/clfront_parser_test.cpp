// Parser tests: declarations, statements, expressions, OpenCL qualifiers,
// vector literals and syntax-error reporting.
#include <gtest/gtest.h>

#include "clfront/parser.hpp"

namespace rc = repro::clfront;

namespace {

rc::TranslationUnit parse_ok(const std::string& src) {
  auto unit = rc::parse_opencl(src);
  EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().message);
  return unit.ok() ? std::move(unit).take() : rc::TranslationUnit{};
}

}  // namespace

TEST(ParserTest, MinimalKernel) {
  const auto unit = parse_ok("kernel void k(global float* a) { a[0] = 1.0f; }");
  ASSERT_EQ(unit.functions.size(), 1u);
  const auto& fn = unit.functions[0];
  EXPECT_TRUE(fn.is_kernel);
  EXPECT_EQ(fn.name, "k");
  ASSERT_EQ(fn.params.size(), 1u);
  EXPECT_TRUE(fn.params[0].type.is_pointer);
  EXPECT_EQ(fn.params[0].type.addr_space, rc::AddressSpace::kGlobal);
}

TEST(ParserTest, UnderscoreQualifiersAccepted) {
  const auto unit =
      parse_ok("__kernel void k(__global int* a, __local float* b, __constant int* c) {}");
  const auto& params = unit.functions[0].params;
  EXPECT_EQ(params[0].type.addr_space, rc::AddressSpace::kGlobal);
  EXPECT_EQ(params[1].type.addr_space, rc::AddressSpace::kLocal);
  EXPECT_EQ(params[2].type.addr_space, rc::AddressSpace::kConstant);
}

TEST(ParserTest, HelperFunctionIsNotKernel) {
  const auto unit = parse_ok("float f(float x) { return x * 2.0f; }");
  EXPECT_FALSE(unit.functions[0].is_kernel);
  EXPECT_EQ(unit.functions[0].return_type.scalar, rc::ScalarKind::kFloat);
}

TEST(ParserTest, FindKernelHelpers) {
  const auto unit = parse_ok(
      "float helper(float x) { return x; }\n"
      "kernel void main_k(global float* a) { a[0] = helper(1.0f); }");
  EXPECT_EQ(unit.first_kernel()->name, "main_k");
  EXPECT_NE(unit.find_kernel("main_k"), nullptr);
  EXPECT_EQ(unit.find_kernel("helper"), nullptr);  // not a kernel
}

TEST(ParserTest, VectorTypes) {
  const auto unit = parse_ok("kernel void k(global float4* v) { float4 x = v[0]; }");
  EXPECT_EQ(unit.functions[0].params[0].type.width, 4);
}

TEST(ParserTest, DeclarationsWithMultipleVariables) {
  const auto unit = parse_ok("kernel void k() { int a = 1, b = 2, c; }");
  const auto& body = unit.functions[0].body->body;
  ASSERT_EQ(body.size(), 1u);
  const auto& decl = body[0]->as<rc::DeclStmt>();
  ASSERT_EQ(decl.decls.size(), 3u);
  EXPECT_NE(decl.decls[0].init, nullptr);
  EXPECT_EQ(decl.decls[2].init, nullptr);
}

TEST(ParserTest, LocalArrayDeclaration) {
  const auto unit = parse_ok("kernel void k() { local float tile[256]; }");
  const auto& decl = unit.functions[0].body->body[0]->as<rc::DeclStmt>();
  EXPECT_EQ(decl.decls[0].array_size, 256u);
  EXPECT_EQ(decl.decls[0].type.addr_space, rc::AddressSpace::kLocal);
}

TEST(ParserTest, ControlFlowStatements) {
  const auto unit = parse_ok(R"(
kernel void k(global int* a, int n) {
  for (int i = 0; i < n; i++) {
    if (i > 2) { a[i] = i; } else { continue; }
    while (n > 0) { n = n - 1; break; }
    do { n = n + 1; } while (n < 5);
  }
  return;
})");
  ASSERT_EQ(unit.functions.size(), 1u);
  const auto& outer = unit.functions[0].body->body;
  EXPECT_EQ(outer[0]->kind, rc::StmtKind::kFor);
  EXPECT_EQ(outer[1]->kind, rc::StmtKind::kReturn);
}

TEST(ParserTest, OperatorPrecedence) {
  // a + b * c parses as a + (b * c).
  const auto unit = parse_ok("kernel void k(int a, int b, int c) { int r = a + b * c; }");
  const auto& decl = unit.functions[0].body->body[0]->as<rc::DeclStmt>();
  const auto& root = decl.decls[0].init->as<rc::BinaryExpr>();
  EXPECT_EQ(root.op, rc::BinaryOp::kAdd);
  EXPECT_EQ(root.rhs->as<rc::BinaryExpr>().op, rc::BinaryOp::kMul);
}

TEST(ParserTest, TernaryAndComparisons) {
  const auto unit = parse_ok("kernel void k(float x) { float y = x > 0.0f ? x : -x; }");
  const auto& decl = unit.functions[0].body->body[0]->as<rc::DeclStmt>();
  EXPECT_EQ(decl.decls[0].init->kind, rc::ExprKind::kConditional);
}

TEST(ParserTest, CompoundAssignments) {
  const auto unit = parse_ok("kernel void k(global float* a) { a[0] += 2.0f; }");
  const auto& stmt = unit.functions[0].body->body[0]->as<rc::ExprStmt>();
  const auto& assign = stmt.expr->as<rc::AssignExpr>();
  ASSERT_TRUE(assign.op.has_value());
  EXPECT_EQ(*assign.op, rc::BinaryOp::kAdd);
}

TEST(ParserTest, VectorLiteralCastSyntax) {
  const auto unit = parse_ok("kernel void k() { float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f); }");
  const auto& decl = unit.functions[0].body->body[0]->as<rc::DeclStmt>();
  const auto& ctor = decl.decls[0].init->as<rc::VectorCtorExpr>();
  EXPECT_EQ(ctor.type.width, 4);
  EXPECT_EQ(ctor.args.size(), 4u);
}

TEST(ParserTest, FunctionStyleVectorConstructor) {
  const auto unit = parse_ok("kernel void k() { float2 v = float2(1.0f, 2.0f); }");
  const auto& decl = unit.functions[0].body->body[0]->as<rc::DeclStmt>();
  EXPECT_EQ(decl.decls[0].init->kind, rc::ExprKind::kVectorCtor);
}

TEST(ParserTest, ScalarCast) {
  const auto unit = parse_ok("kernel void k(int a) { float x = (float)a; }");
  const auto& decl = unit.functions[0].body->body[0]->as<rc::DeclStmt>();
  const auto& cast = decl.decls[0].init->as<rc::CastExpr>();
  EXPECT_EQ(cast.target.scalar, rc::ScalarKind::kFloat);
}

TEST(ParserTest, MemberSwizzle) {
  const auto unit = parse_ok("kernel void k(float4 v) { float x = v.x; float2 lo = v.lo; }");
  const auto& d0 = unit.functions[0].body->body[0]->as<rc::DeclStmt>();
  EXPECT_EQ(d0.decls[0].init->kind, rc::ExprKind::kMember);
}

TEST(ParserTest, CallsWithArguments) {
  const auto unit = parse_ok(
      "kernel void k(global float* a) { int i = get_global_id(0); a[i] = sin(a[i]); }");
  EXPECT_EQ(unit.functions.size(), 1u);
}

TEST(ParserTest, DumpAstContainsStructure) {
  const auto unit = parse_ok("kernel void k(int n) { if (n > 0) { n = n - 1; } }");
  const auto dump = rc::dump_ast(unit);
  EXPECT_NE(dump.find("kernel function k"), std::string::npos);
  EXPECT_NE(dump.find("if"), std::string::npos);
}

// --- error cases -----------------------------------------------------------------

TEST(ParserErrorTest, MissingSemicolon) {
  const auto result = rc::parse_opencl("kernel void k() { int a = 1 }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("line 1"), std::string::npos);
}

TEST(ParserErrorTest, UnbalancedBrace) {
  EXPECT_FALSE(rc::parse_opencl("kernel void k() { if (1) {").ok());
}

TEST(ParserErrorTest, MissingParameterName) {
  EXPECT_FALSE(rc::parse_opencl("kernel void k(global float*) {}").ok());
}

TEST(ParserErrorTest, GarbageExpression) {
  EXPECT_FALSE(rc::parse_opencl("kernel void k() { int a = * ; }").ok());
}

TEST(ParserErrorTest, MissingWhileAfterDo) {
  EXPECT_FALSE(rc::parse_opencl("kernel void k() { do { } until (1); }").ok());
}

// --- type name parsing ---------------------------------------------------------------

TEST(TypeNameTest, ScalarAndVectorNames) {
  EXPECT_EQ(rc::parse_type_name("int")->scalar, rc::ScalarKind::kInt);
  EXPECT_EQ(rc::parse_type_name("float4")->width, 4);
  EXPECT_EQ(rc::parse_type_name("uchar16")->width, 16);
  EXPECT_EQ(rc::parse_type_name("size_t")->scalar, rc::ScalarKind::kULong);
  EXPECT_FALSE(rc::parse_type_name("float5").has_value());
  EXPECT_FALSE(rc::parse_type_name("banana").has_value());
}

TEST(TypeNameTest, PromotionRules) {
  const auto f = rc::Type::float_type();
  const auto i = rc::Type::int_type();
  EXPECT_TRUE(rc::promote(f, i).is_floating());
  EXPECT_EQ(rc::promote(f.with_width(4), i).width, 4);
  rc::Type d = f;
  d.scalar = rc::ScalarKind::kDouble;
  EXPECT_EQ(rc::promote(f, d).scalar, rc::ScalarKind::kDouble);
}

TEST(TypeNameTest, TypeToString) {
  rc::Type t = rc::Type::float_type().with_width(4).as_pointer(rc::AddressSpace::kGlobal);
  EXPECT_EQ(t.to_string(), "global float4*");
}
