// Unit tests for the common utilities: RNG determinism, statistics, CSV
// round-trips, string helpers, table rendering and the Result/Status types.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace rc = repro::common;

// --- Result / Status --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  rc::Status st;
  EXPECT_TRUE(st.ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  rc::Status st = rc::not_found("missing thing");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, rc::ErrorCode::kNotFound);
  EXPECT_NE(st.error().message.find("missing thing"), std::string::npos);
}

TEST(ResultTest, HoldsValue) {
  rc::Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  rc::Result<int> r = rc::invalid_argument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, rc::ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(ResultTest, TakeMovesValue) {
  rc::Result<std::string> r = std::string("payload");
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(ErrorCodeTest, AllCodesHaveNames) {
  for (auto code : {rc::ErrorCode::kInvalidArgument, rc::ErrorCode::kOutOfRange,
                    rc::ErrorCode::kNotFound, rc::ErrorCode::kParseError,
                    rc::ErrorCode::kTypeError, rc::ErrorCode::kUnsupported,
                    rc::ErrorCode::kInternal, rc::ErrorCode::kIo,
                    rc::ErrorCode::kUnavailable}) {
    EXPECT_STRNE(rc::to_string(code), "unknown");
  }
}

// --- RNG ----------------------------------------------------------------------

TEST(RngTest, Xoshiro256IsDeterministic) {
  rc::Xoshiro256 a(123);
  rc::Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  rc::Xoshiro256 a(1);
  rc::Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  rc::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIndexBounds) {
  rc::Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  rc::Xoshiro256 rng(42);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.gaussian();
  EXPECT_NEAR(rc::mean(xs), 0.0, 0.05);
  EXPECT_NEAR(rc::stddev(xs), 1.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  rc::Xoshiro256 rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, HashGaussianIsStateless) {
  EXPECT_EQ(rc::hash_gaussian(777), rc::hash_gaussian(777));
  EXPECT_NE(rc::hash_gaussian(777), rc::hash_gaussian(778));
}

TEST(RngTest, HashGaussianRoughlyStandard) {
  std::vector<double> xs(20000);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = rc::hash_gaussian(i * 2654435761ULL);
  EXPECT_NEAR(rc::mean(xs), 0.0, 0.05);
  EXPECT_NEAR(rc::stddev(xs), 1.0, 0.05);
}

TEST(RngTest, Fnv1aDistinguishesStrings) {
  EXPECT_NE(rc::fnv1a(std::string("kernel_a")), rc::fnv1a(std::string("kernel_b")));
  EXPECT_EQ(rc::fnv1a(std::string("same")), rc::fnv1a(std::string("same")));
}

// --- stats ---------------------------------------------------------------------

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(rc::mean(xs), 3.0);
  EXPECT_NEAR(rc::stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, EmptyInputsAreNaN) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(rc::mean(empty)));
  EXPECT_TRUE(std::isnan(rc::percentile(empty, 50)));
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(rc::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(rc::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(rc::percentile(xs, 50), 25.0);
}

TEST(StatsTest, PercentileRejectsBadP) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)rc::percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW((void)rc::percentile(xs, 101), std::invalid_argument);
}

TEST(StatsTest, RmseKnownValue) {
  const std::vector<double> pred{1, 2, 3};
  const std::vector<double> truth{1, 2, 5};
  EXPECT_NEAR(rc::rmse(pred, truth), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(rc::mae(pred, truth), 2.0 / 3.0, 1e-12);
}

TEST(StatsTest, RmseSizeMismatchThrows) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1};
  EXPECT_THROW((void)rc::rmse(a, b), std::invalid_argument);
}

TEST(StatsTest, RelativeErrorsPercent) {
  const std::vector<double> pred{1.1};
  const std::vector<double> truth{1.0};
  const auto errs = rc::relative_errors_percent(pred, truth);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NEAR(errs[0], 10.0, 1e-9);
}

TEST(StatsTest, RSquaredPerfectFit) {
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(rc::r_squared(y, y), 1.0);
}

TEST(StatsTest, BoxStatsOrdering) {
  std::vector<double> xs{9, 1, 5, 3, 7};
  const auto box = rc::box_stats(xs);
  EXPECT_EQ(box.n, 5u);
  EXPECT_LE(box.min, box.q25);
  EXPECT_LE(box.q25, box.median);
  EXPECT_LE(box.median, box.q75);
  EXPECT_LE(box.q75, box.max);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
}

// --- strings --------------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  const auto parts = rc::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(rc::trim("  hi \t\n"), "hi");
  EXPECT_EQ(rc::trim(""), "");
  EXPECT_EQ(rc::trim("   "), "");
}

TEST(StringsTest, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(rc::join(parts, "-"), "x-y-z");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(rc::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(rc::format_double(1.0, 0), "1");
}

TEST(StringsTest, StartsWithAndLower) {
  EXPECT_TRUE(rc::starts_with("gpufreq", "gpu"));
  EXPECT_FALSE(rc::starts_with("gpu", "gpufreq"));
  EXPECT_EQ(rc::to_lower("MiXeD"), "mixed");
}

// --- csv -----------------------------------------------------------------------

TEST(CsvTest, RoundTripWithQuoting) {
  rc::CsvDocument doc({"name", "value"});
  doc.add_row({std::string("plain"), std::string("1")});
  doc.add_row({std::string("with,comma"), std::string("quote\"inside")});
  const auto parsed = rc::CsvDocument::parse(doc.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header(), doc.header());
  ASSERT_EQ(parsed.value().num_rows(), 2u);
  EXPECT_EQ(parsed.value().rows()[1][0], "with,comma");
  EXPECT_EQ(parsed.value().rows()[1][1], "quote\"inside");
}

TEST(CsvTest, DoubleRows) {
  rc::CsvDocument doc({"a", "b"});
  doc.add_row(std::vector<double>{1.5, 2.25}, 3);
  EXPECT_EQ(doc.rows()[0][0], "1.500");
}

TEST(CsvTest, ColumnIndex) {
  rc::CsvDocument doc({"x", "y"});
  ASSERT_TRUE(doc.column_index("y").ok());
  EXPECT_EQ(doc.column_index("y").value(), 1u);
  EXPECT_FALSE(doc.column_index("z").ok());
}

TEST(CsvTest, SaveAndLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gpufreq_csv_test.csv").string();
  rc::CsvDocument doc({"k"});
  doc.add_row({std::string("v")});
  ASSERT_TRUE(doc.save(path).ok());
  const auto loaded = rc::CsvDocument::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().rows()[0][0], "v");
  std::filesystem::remove(path);
}

TEST(CsvTest, EmptyDocumentIsParseError) {
  EXPECT_FALSE(rc::CsvDocument::parse("").ok());
}

// --- table ----------------------------------------------------------------------

TEST(TableTest, RendersAllCells) {
  rc::TablePrinter table({"col_a", "col_b"}, {rc::Align::kLeft, rc::Align::kRight});
  table.add_row({"x", "1"});
  table.add_separator();
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("col_a"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  rc::TablePrinter table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NE(table.to_string().find("only"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 1u);
}
