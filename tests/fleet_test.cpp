// The multi-process serving fleet, exercised in-process: the front
// balancer must be invisible to clients — responses bit-identical to a
// direct Predictor at any backend count, per-connection response order
// preserved — and worker loss must cost latency, never an error: requests
// pending on a dying backend are re-dispatched to live ones, and a backend
// that comes back on the same endpoint is re-adopted by the maintenance
// thread. (The true multi-process version of these assertions, with real
// repro_serve workers and kill -9, lives in scripts/fleet_smoke.sh.)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault.hpp"
#include "serve/protocol.hpp"

#include "benchgen/benchgen.hpp"
#include "core/measurement.hpp"
#include "core/model.hpp"
#include "core/predictor.hpp"
#include "fleet/balancer.hpp"
#include "fleet/broker.hpp"
#include "gpusim/simulator.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/model_cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace rc = repro::common;
namespace rco = repro::core;
namespace rb = repro::benchgen;
namespace rg = repro::gpusim;
namespace rs = repro::serve;
namespace rf = repro::fleet;

namespace {

/// A throwaway directory under the build tree, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& stem) {
    path = std::filesystem::temp_directory_path() /
           (stem + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Same small training setup as serve_test.cpp: train once per binary.
std::vector<rb::MicroBenchmark> small_suite() {
  static const auto subset = [] {
    const auto full = rb::generate_training_suite().value();
    std::vector<rb::MicroBenchmark> out;
    for (std::size_t i = 0; i < full.size(); i += 8) out.push_back(full[i]);
    return out;
  }();
  return subset;
}

std::shared_ptr<const rco::FrequencyModel> trained_model() {
  static const auto model = [] {
    const rco::SimulatorBackend backend(rg::DeviceModel::titan_x());
    rco::TrainingOptions options;
    options.num_configs = 8;
    auto m = rco::FrequencyModel::train(backend, small_suite(), options);
    EXPECT_TRUE(m.ok()) << (m.ok() ? "" : m.error().message);
    return std::make_shared<const rco::FrequencyModel>(std::move(m).take());
  }();
  return model;
}

bool bitwise_equal(const std::vector<rco::PredictedPoint>& a,
                   const std::vector<rco::PredictedPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].config != b[i].config || a[i].heuristic != b[i].heuristic ||
        std::memcmp(&a[i].speedup, &b[i].speedup, sizeof(double)) != 0 ||
        std::memcmp(&a[i].energy, &b[i].energy, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

const char* kSourceKernel = R"CL(
float damp(float v) { return v * 0.9375f + 0.0625f; }
kernel void saxpy_damped(global float* x, global float* y, float a, int n) {
  int gid = get_global_id(0);
  if (gid < n) y[gid] = damp(a * x[gid] + y[gid]);
}
)CL";

/// One in-process stand-in for a repro_serve worker: a Service over the
/// shared model plus a SocketServer (TCP by default, Unix when a path is
/// given). stop() mimics a worker death — pending work surfaces as EOF and
/// kUnavailable errors, exactly what the balancer must absorb.
struct InProcWorker {
  std::unique_ptr<rs::Service> service;
  std::unique_ptr<rs::SocketServer> server;

  /// In-process workers share this test binary, so a metrics test must give
  /// each worker its OWN registry — with the shared global one, N workers
  /// would each expose the same accumulated counters and the balancer's
  /// sum-merge would multiply them (docs/OBSERVABILITY.md).
  static InProcWorker start(const std::string& unix_path = {},
                            repro::obs::Registry* registry = nullptr) {
    InProcWorker worker;
    rs::ServiceOptions service_options;
    service_options.registry = registry;
    auto service = rs::Service::from_model(trained_model(), service_options);
    EXPECT_TRUE(service.ok());
    worker.service = std::move(service).take();
    rs::ServerOptions options;
    options.registry = registry;
    if (unix_path.empty()) {
      options.tcp_port = 0;
    } else {
      options.unix_path = unix_path;
    }
    auto server = rs::SocketServer::start(*worker.service, options);
    EXPECT_TRUE(server.ok()) << server.error().message;
    worker.server = std::move(server).take();
    return worker;
  }

  rf::BackendEndpoint endpoint() const {
    if (!server->unix_path().empty()) return {server->unix_path(), -1};
    return {"", server->tcp_port()};
  }

  void stop() {
    server->stop();
    service->stop();
  }
};

std::vector<rco::Predictor::SourceRequest> source_burst(std::size_t n) {
  return std::vector<rco::Predictor::SourceRequest>(n, {kSourceKernel, ""});
}

/// A fake worker that answers every request line with a retryable
/// "unavailable" error after a fixed delay — so the balancer re-dispatches
/// each reply, burning the request's deadline budget one slice at a time.
class UnavailableBackend {
 public:
  explicit UnavailableBackend(std::chrono::milliseconds reply_delay)
      : reply_delay_(reply_delay) {
    listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listener_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listener_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)), 0);
    EXPECT_EQ(::listen(listener_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    acceptor_ = std::thread([this] { accept_loop(); });
  }
  ~UnavailableBackend() { stop(); }

  void stop() {
    if (stopping_.exchange(true)) return;
    ::shutdown(listener_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    ::close(listener_);
  }
  [[nodiscard]] int port() const { return port_; }

 private:
  void accept_loop() {
    std::vector<std::thread> conns;
    for (;;) {
      const int fd = ::accept(listener_, nullptr, nullptr);
      if (fd < 0) break;  // stop() shut the listener down
      conns.emplace_back([fd, delay = reply_delay_] {
        std::string buffer;
        char chunk[4096];
        for (;;) {
          const ssize_t n = ::read(fd, chunk, sizeof chunk);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) break;
          buffer.append(chunk, static_cast<std::size_t>(n));
          std::size_t start = 0;
          for (;;) {
            const auto nl = buffer.find('\n', start);
            if (nl == std::string::npos) break;
            const std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            std::this_thread::sleep_for(delay);
            std::string reply =
                rs::format_error(rs::best_effort_id(line),
                                 rc::unavailable("always draining"));
            reply.push_back('\n');
            (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
          }
          buffer.erase(0, start);
        }
        ::close(fd);
      });
    }
    for (auto& conn : conns) conn.join();
  }

  std::chrono::milliseconds reply_delay_;
  int listener_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
};

}  // namespace

// --- the fleet's headline contract --------------------------------------------

TEST(BalancerTest, BitIdenticalToDirectPredictorAtEveryBackendCount) {
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto source_reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(source_reference.ok()) << source_reference.error().message;

  const auto kernels = [&] {
    std::vector<repro::clfront::StaticFeatures> out;
    const auto suite = small_suite();
    for (std::size_t i = 0; i < 12; ++i) out.push_back(suite[i % suite.size()].features);
    return out;
  }();
  const auto feature_reference = direct.value().predict_batch(kernels);
  ASSERT_TRUE(feature_reference.ok());

  for (const std::size_t backends : {1u, 2u, 4u}) {
    std::vector<InProcWorker> workers;
    std::vector<rf::BackendEndpoint> endpoints;
    for (std::size_t i = 0; i < backends; ++i) {
      workers.push_back(InProcWorker::start());
      endpoints.push_back(workers.back().endpoint());
    }
    rf::BalancerOptions options;
    options.tcp_port = 0;
    auto balancer = rf::Balancer::start(endpoints, options);
    ASSERT_TRUE(balancer.ok()) << balancer.error().message;
    EXPECT_EQ(balancer.value()->alive_backends(), backends);

    auto client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
    ASSERT_TRUE(client.ok()) << client.error().message;

    // Feature requests, strict round trips.
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      auto response = client.value().predict(kernels[i]);
      ASSERT_TRUE(response.ok()) << response.error().message << " backends=" << backends;
      EXPECT_EQ(response.value().kernel, feature_reference.value()[i].kernel);
      EXPECT_TRUE(bitwise_equal(response.value().pareto,
                                feature_reference.value()[i].pareto))
          << "kernel " << i << " backends=" << backends;
    }

    // A pipelined source burst: responses must come back in request order
    // on this connection even though they fan out across backends.
    const auto burst = client.value().predict_source_many(source_burst(8));
    ASSERT_EQ(burst.size(), 8u);
    for (const auto& r : burst) {
      ASSERT_TRUE(r.ok()) << r.error().message << " backends=" << backends;
      EXPECT_EQ(r.value().kernel, "saxpy_damped");
      EXPECT_TRUE(bitwise_equal(r.value().pareto, source_reference.value().pareto))
          << "backends=" << backends;
    }

    // Per-request errors stay per-request through the balancer too.
    auto bad = client.value().predict_source("kernel void broken( {");
    EXPECT_FALSE(bad.ok());
    auto after = client.value().predict_source(kSourceKernel);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(bitwise_equal(after.value().pareto, source_reference.value().pareto));

    balancer.value()->stop();
    const auto stats = balancer.value()->stats();
    EXPECT_EQ(stats.requests, kernels.size() + 8 + 2);
    EXPECT_EQ(stats.routed.size(), backends);
    std::uint64_t routed_total = 0;
    for (const auto r : stats.routed) routed_total += r;
    EXPECT_GE(routed_total, stats.requests);  // redispatches can only add
    if (backends > 1) {
      // Least-loaded with round-robin tie-break must actually spread work.
      std::uint64_t max_routed = 0;
      for (const auto r : stats.routed) max_routed = std::max(max_routed, r);
      EXPECT_LT(max_routed, routed_total);
    }
    for (auto& worker : workers) worker.stop();
  }
}

// --- fault handling -----------------------------------------------------------

TEST(BalancerTest, BackendDeathMidBurstLosesNoRequests) {
  std::vector<InProcWorker> workers;
  std::vector<rf::BackendEndpoint> endpoints;
  for (std::size_t i = 0; i < 2; ++i) {
    workers.push_back(InProcWorker::start());
    endpoints.push_back(workers.back().endpoint());
  }
  rf::BalancerOptions options;
  options.tcp_port = 0;
  auto balancer = rf::Balancer::start(endpoints, options);
  ASSERT_TRUE(balancer.ok()) << balancer.error().message;

  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());

  // Pipelined burst from a client thread; kill one backend while it runs.
  constexpr std::size_t kBurst = 32;
  std::vector<rc::Result<rco::Predictor::KernelPrediction>> responses;
  std::thread client_thread([&] {
    auto client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
    ASSERT_TRUE(client.ok()) << client.error().message;
    responses = client.value().predict_source_many(source_burst(kBurst));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  workers[0].stop();  // in-flight and queued work must move to worker 1
  client_thread.join();

  ASSERT_EQ(responses.size(), kBurst);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok())
        << "request " << i << ": " << responses[i].error().message;
    EXPECT_TRUE(bitwise_equal(responses[i].value().pareto, reference.value().pareto))
        << "request " << i;
  }

  balancer.value()->stop();
  workers[1].stop();
}

TEST(BalancerTest, ReconnectsToRestartedBackend) {
  TempDir dir("repro-fleet-reconnect");
  const std::string sock = (dir.path / "worker.sock").string();
  auto worker = InProcWorker::start(sock);

  rf::BalancerOptions options;
  options.tcp_port = 0;
  options.health_interval = std::chrono::milliseconds(100);
  auto balancer = rf::Balancer::start({{sock, -1}}, options);
  ASSERT_TRUE(balancer.ok()) << balancer.error().message;

  auto client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().predict_source(kSourceKernel).ok());

  worker.stop();
  const auto gone_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (balancer.value()->alive_backends() != 0 &&
         std::chrono::steady_clock::now() < gone_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(balancer.value()->alive_backends(), 0u);
  // With no live worker the client sees a retryable error, not a hang.
  auto while_down = client.value().predict_source(kSourceKernel);
  ASSERT_FALSE(while_down.ok());
  EXPECT_EQ(while_down.error().code, rc::ErrorCode::kUnavailable);

  // Same endpoint comes back (the supervisor respawns onto the same socket
  // path); the maintenance thread must re-adopt it without help.
  worker = InProcWorker::start(sock);
  const auto back_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (balancer.value()->alive_backends() != 1 &&
         std::chrono::steady_clock::now() < back_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(balancer.value()->alive_backends(), 1u);
  auto after = client.value().predict_source(kSourceKernel);
  ASSERT_TRUE(after.ok()) << after.error().message;

  EXPECT_GE(balancer.value()->stats().reconnects, 1u);
  EXPECT_GE(balancer.value()->stats().backend_failures, 1u);
  balancer.value()->stop();
  worker.stop();
}

// --- deadlines across re-dispatch ---------------------------------------------

TEST(BalancerTest, DeadlineBudgetDeductedAcrossRedispatch) {
  // The only backend answers every request "unavailable" after ~30ms, so
  // the balancer re-dispatches in a loop. With the ORIGINAL budget forwarded
  // each time, the loop would only stop at max_dispatch_attempts (set
  // absurdly high here); deducting elapsed time means the client must see
  // kDeadlineExceeded once the 250ms budget is burned.
  UnavailableBackend backend(std::chrono::milliseconds(30));
  rf::BalancerOptions options;
  options.tcp_port = 0;
  options.health_interval = std::chrono::milliseconds(0);  // no pings
  options.max_dispatch_attempts = 1000;
  auto balancer = rf::Balancer::start({{"", backend.port()}}, options);
  ASSERT_TRUE(balancer.ok()) << balancer.error().message;

  auto client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
  ASSERT_TRUE(client.ok()) << client.error().message;
  client.value().set_deadline_ms(250.0);

  const auto t0 = std::chrono::steady_clock::now();
  auto response = client.value().predict_source(kSourceKernel);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, rc::ErrorCode::kDeadlineExceeded)
      << response.error().message;
  EXPECT_TRUE(rc::is_retryable(response.error().code));
  // The budget actually bounded the retry loop: well past the deadline is
  // fine (one in-flight slice can finish), but nowhere near 1000 * 30ms.
  EXPECT_GE(elapsed, std::chrono::milliseconds(200));
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_GE(balancer.value()->stats().redispatches, 1u);

  balancer.value()->stop();
  backend.stop();
}

// --- socket faults through the whole fleet path -------------------------------

TEST(BalancerTest, RoundTripBitIdenticalUnderSocketFaults) {
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());

  std::vector<InProcWorker> workers;
  std::vector<rf::BackendEndpoint> endpoints;
  for (std::size_t i = 0; i < 2; ++i) {
    workers.push_back(InProcWorker::start());
    endpoints.push_back(workers.back().endpoint());
  }
  rf::BalancerOptions options;
  options.tcp_port = 0;
  auto balancer = rf::Balancer::start(endpoints, options);
  ASSERT_TRUE(balancer.ok()) << balancer.error().message;

  {
    // Benign faults only (no drops): short reads/writes and EINTR storms on
    // every socket hop — client↔balancer and balancer↔worker — must change
    // nothing about the bytes that come back.
    rc::FaultSpec spec;
    spec.short_rw = 0.5;
    spec.eintr = 0.3;
    rc::FaultInjector::Scope scope(123, spec);

    auto client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
    ASSERT_TRUE(client.ok()) << client.error().message;
    for (int i = 0; i < 3; ++i) {
      auto response = client.value().predict_source(kSourceKernel);
      ASSERT_TRUE(response.ok()) << response.error().message;
      EXPECT_EQ(response.value().kernel, "saxpy_damped");
      EXPECT_TRUE(bitwise_equal(response.value().pareto, reference.value().pareto))
          << "round trip " << i;
    }
  }

  balancer.value()->stop();
  for (auto& worker : workers) worker.stop();
}

// --- balancer-addressed health/stats ------------------------------------------

TEST(BalancerTest, AnswersHealthAndStatsItself) {
  auto worker = InProcWorker::start();
  rf::BalancerOptions options;
  options.tcp_port = 0;
  auto balancer = rf::Balancer::start({worker.endpoint()}, options);
  ASSERT_TRUE(balancer.ok()) << balancer.error().message;

  auto client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  auto health = client.value().health();
  ASSERT_TRUE(health.ok()) << health.error().message;
  EXPECT_GE(health.value().uptime_s, 0.0);

  ASSERT_TRUE(client.value().predict_source(kSourceKernel).ok());
  auto stats = client.value().stats();
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  EXPECT_EQ(stats.value().requests, 1u);
  EXPECT_EQ(stats.value().connections, 1u);
  EXPECT_EQ(stats.value().queue_depth, 0u);

  balancer.value()->stop();
  worker.stop();
}

// --- the model-cache broker ---------------------------------------------------

TEST(BrokerTest, TrainsOnceAndHandsWorkersTheDiskCopy) {
  TempDir dir("repro-fleet-broker");
  rs::ServiceConfig config;
  config.suite = small_suite();
  config.training.num_configs = 8;

  rf::BrokerOptions options;
  options.unix_path = (dir.path / "broker.sock").string();
  options.cache_dir = (dir.path / "cache").string();
  auto broker = rf::Broker::start(config, options);
  ASSERT_TRUE(broker.ok()) << broker.error().message;

  // N concurrent workers ask for the model; the broker's get_or_train
  // mutex means exactly one training run.
  constexpr std::size_t kWorkers = 4;
  std::vector<rc::Result<rf::BrokerModelReply>> replies(
      kWorkers, rc::internal_error("unset"));
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    threads.emplace_back(
        [&, i] { replies[i] = rf::fetch_model(broker.value()->unix_path()); });
  }
  for (auto& t : threads) t.join();

  for (const auto& reply : replies) {
    ASSERT_TRUE(reply.ok()) << reply.error().message;
    EXPECT_EQ(reply.value().path, replies[0].value().path);
    EXPECT_TRUE(std::filesystem::exists(reply.value().path));
  }
  EXPECT_EQ(broker.value()->cache().stats().misses, 1u);
  EXPECT_EQ(broker.value()->cache().stats().hits, kWorkers - 1);

  // A worker pointing its own cache at the shared directory disk-hits and
  // serves a model bit-identical to a freshly trained one.
  rs::ModelCache worker_cache(2, options.cache_dir);
  auto service = rs::Service::create(config, worker_cache);
  ASSERT_TRUE(service.ok()) << service.error().message;
  EXPECT_EQ(worker_cache.stats().disk_hits, 1u);
  EXPECT_EQ(worker_cache.stats().misses, 0u);

  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());
  auto served = service.value()->predict_source(kSourceKernel);
  ASSERT_TRUE(served.ok()) << served.error().message;
  EXPECT_TRUE(bitwise_equal(served.value().pareto, reference.value().pareto));

  service.value()->stop();
  broker.value()->stop();
}

// --- binary framing & chunked streams through the balancer --------------------

TEST(BalancerTest, ChunkedStreamThroughBalancerBitIdentical) {
  // A chunk-streamed predict_source forwarded through the balancer must be
  // bit-identical to the direct predictor at every chunk split — and a
  // plain JSON client on the same balancer must be unaffected by the binary
  // traffic next to it.
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());

  std::vector<InProcWorker> workers;
  std::vector<rf::BackendEndpoint> endpoints;
  for (std::size_t i = 0; i < 2; ++i) {
    workers.push_back(InProcWorker::start());
    endpoints.push_back(workers.back().endpoint());
  }
  rf::BalancerOptions options;
  options.tcp_port = 0;
  auto balancer = rf::Balancer::start(endpoints, options);
  ASSERT_TRUE(balancer.ok()) << balancer.error().message;

  auto binary_client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
  auto json_client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
  ASSERT_TRUE(binary_client.ok() && json_client.ok());
  auto negotiated = binary_client.value().negotiate_binary();
  ASSERT_TRUE(negotiated.ok()) << negotiated.error().message;
  ASSERT_EQ(negotiated.value(), rs::kProtocolVersion);

  const std::string source = kSourceKernel;
  for (const std::size_t split : {std::size_t{1}, std::size_t{37}, source.size()}) {
    std::size_t offset = 0;
    auto provider = [&]() -> std::optional<std::string> {
      if (offset >= source.size()) return std::nullopt;
      const std::size_t n = std::min(split, source.size() - offset);
      std::string chunk = source.substr(offset, n);
      offset += n;
      return chunk;
    };
    auto streamed = binary_client.value().predict_source_stream(provider);
    ASSERT_TRUE(streamed.ok()) << streamed.error().message << " split=" << split;
    EXPECT_TRUE(bitwise_equal(streamed.value().pareto, reference.value().pareto))
        << "split=" << split;

    auto via_json = json_client.value().predict_source(kSourceKernel);
    ASSERT_TRUE(via_json.ok()) << via_json.error().message;
    EXPECT_TRUE(bitwise_equal(via_json.value().pareto, reference.value().pareto));
  }

  balancer.value()->stop();
  for (auto& worker : workers) worker.stop();
}

TEST(BalancerTest, BackendDeathMidStreamFailsRetryablyWithoutRedispatch) {
  // A partially-streamed request cannot be replayed (the balancer does not
  // buffer chunks): when the backend dies mid-stream the client must see a
  // retryable kUnavailable — promptly, not after a hang — and the balancer
  // must keep serving. Fresh requests then land on nothing until the worker
  // returns, so this uses a single disposable worker.
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());

  auto worker = InProcWorker::start();
  rf::BalancerOptions options;
  options.tcp_port = 0;
  auto balancer = rf::Balancer::start({worker.endpoint()}, options);
  ASSERT_TRUE(balancer.ok()) << balancer.error().message;

  auto client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  auto negotiated = client.value().negotiate_binary();
  ASSERT_TRUE(negotiated.ok());
  ASSERT_EQ(negotiated.value(), rs::kProtocolVersion);

  const std::string source = kSourceKernel;
  int calls = 0;
  auto provider = [&]() -> std::optional<std::string> {
    ++calls;
    if (calls == 1) return source.substr(0, source.size() / 2);
    if (calls == 2) {
      // Kill the backend between chunks: the stream is now half-forwarded.
      worker.stop();
      return source.substr(source.size() / 2);
    }
    return std::nullopt;
  };
  auto streamed = client.value().predict_source_stream(provider);
  ASSERT_FALSE(streamed.ok()) << "half-streamed request must not succeed";
  EXPECT_EQ(streamed.error().code, rc::ErrorCode::kUnavailable)
      << streamed.error().message;

  balancer.value()->stop();
}

// --- observability through the balancer ---------------------------------------

TEST(BalancerTest, TracedRequestMergesBalancerAndWorkerStages) {
  // A traced request through the balancer must return one merged trace:
  // the balancer's own stages (parse, dispatch, reply) plus the worker's
  // stage set spliced in between — at least five distinct stages end to
  // end — and the prediction must stay bit-identical to the direct
  // Predictor at every worker count, over both framings.
  auto direct = rco::Predictor::from_model(trained_model());
  ASSERT_TRUE(direct.ok());
  const auto reference = direct.value().predict_source(kSourceKernel);
  ASSERT_TRUE(reference.ok());

  for (const std::size_t backends : {1u, 2u, 4u}) {
    std::vector<InProcWorker> workers;
    std::vector<rf::BackendEndpoint> endpoints;
    for (std::size_t i = 0; i < backends; ++i) {
      workers.push_back(InProcWorker::start());
      endpoints.push_back(workers.back().endpoint());
    }
    rf::BalancerOptions options;
    options.tcp_port = 0;
    auto balancer = rf::Balancer::start(endpoints, options);
    ASSERT_TRUE(balancer.ok()) << balancer.error().message;

    for (const bool binary : {false, true}) {
      auto client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
      ASSERT_TRUE(client.ok()) << client.error().message;
      if (binary) {
        auto negotiated = client.value().negotiate_binary();
        ASSERT_TRUE(negotiated.ok()) << negotiated.error().message;
        ASSERT_EQ(negotiated.value(), rs::kProtocolVersion);
      }
      client.value().set_trace_enabled(true);

      auto response = client.value().predict_source(kSourceKernel);
      ASSERT_TRUE(response.ok())
          << response.error().message << " backends=" << backends;
      EXPECT_TRUE(bitwise_equal(response.value().pareto,
                                reference.value().pareto))
          << "backends=" << backends << " binary=" << binary;

      ASSERT_TRUE(client.value().last_trace().has_value())
          << "backends=" << backends << " binary=" << binary;
      const auto& trace = *client.value().last_trace();
      std::vector<std::string> stages;
      for (const auto& s : trace.stages) stages.push_back(s.stage);
      for (const char* expected :
           {"balancer.parse", "balancer.dispatch", "parse", "execute",
            "balancer.reply"}) {
        EXPECT_NE(std::find(stages.begin(), stages.end(), expected),
                  stages.end())
            << "missing stage " << expected << " backends=" << backends
            << " binary=" << binary;
      }
      EXPECT_GE(stages.size(), 5u);
    }

    balancer.value()->stop();
    for (auto& worker : workers) worker.stop();
  }
}

TEST(BalancerTest, AggregatesWorkerMetricsWithItsOwn) {
  // The balancer answers "metrics" by scraping every live worker and
  // merging: counters sum across workers, and the balancer's own
  // repro_balancer_* series join the result. Each in-process worker gets
  // its own registry so the sum is a real sum, not N copies of one shared
  // registry.
#if defined(REPRO_OBS_DISABLED)
  GTEST_SKIP() << "metrics compiled out (REPRO_OBS=OFF)";
#else
  constexpr std::size_t kBackends = 2;
  std::vector<repro::obs::Registry> registries(kBackends);
  std::vector<InProcWorker> workers;
  std::vector<rf::BackendEndpoint> endpoints;
  for (std::size_t i = 0; i < kBackends; ++i) {
    workers.push_back(InProcWorker::start({}, &registries[i]));
    endpoints.push_back(workers.back().endpoint());
  }
  rf::BalancerOptions options;
  options.tcp_port = 0;
  auto balancer = rf::Balancer::start(endpoints, options);
  ASSERT_TRUE(balancer.ok()) << balancer.error().message;

  auto client = rs::SocketClient::connect_tcp(balancer.value()->tcp_port());
  ASSERT_TRUE(client.ok());
  constexpr std::size_t kRequests = 8;
  const auto burst = client.value().predict_source_many(source_burst(kRequests));
  ASSERT_EQ(burst.size(), kRequests);
  for (const auto& r : burst) ASSERT_TRUE(r.ok()) << r.error().message;

  auto metrics = client.value().metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.error().message;
  const auto& values = metrics.value().values;
  auto value_of = [&values](const std::string& name) -> double {
    for (const auto& [n, v] : values) {
      if (n == name) return v;
    }
    return -1.0;
  };
  // The workers' counters, summed. Dispatches can exceed requests (a slice
  // may be re-dispatched) but every request executed exactly once.
  EXPECT_EQ(value_of("repro_requests_total"), static_cast<double>(kRequests));
  EXPECT_EQ(value_of("repro_source_requests_total"),
            static_cast<double>(kRequests));
  // The balancer's own series ride along.
  EXPECT_EQ(value_of("repro_balancer_requests_total"),
            static_cast<double>(kRequests));
  EXPECT_GE(value_of("repro_balancer_dispatches_total"),
            static_cast<double>(kRequests));
  EXPECT_GE(value_of("repro_balancer_backends_alive"),
            static_cast<double>(kBackends));
  // The merged text form announces the scrape width.
  EXPECT_NE(metrics.value().text.find("# merged across 2 worker(s)"),
            std::string::npos)
      << metrics.value().text;

  // Both workers actually served (least-loaded spreads a pipelined burst),
  // so the sum is a genuine cross-worker aggregate.
  EXPECT_GT(registries[0].counter("repro_requests_total")->value(), 0u);
  EXPECT_GT(registries[1].counter("repro_requests_total")->value(), 0u);

  balancer.value()->stop();
  for (auto& worker : workers) worker.stop();
#endif
}
