#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace rc = repro::common;

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  rc::ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  rc::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SmallRangeRunsInline) {
  rc::ThreadPool pool(4);
  // n <= grain: exactly one chunk, on the calling thread.
  const auto caller = std::this_thread::get_id();
  std::size_t calls = 0;
  pool.parallel_for(0, 16, 16, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 16u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsSerial) {
  rc::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t calls = 0;
  pool.parallel_for(0, 1000, 1, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 1000u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, ChunkBoundariesAreContiguous) {
  rc::ThreadPool pool(8);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(10, 1010, 10, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard lock(mutex);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 1010u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i - 1].second, chunks[i].first);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineOnWorkers) {
  rc::ThreadPool pool(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  pool.parallel_for(0, 64, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      ++outer;
      pool.parallel_for(0, 64, 1, [&](std::size_t ilo, std::size_t ihi) {
        inner += static_cast<int>(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(outer.load(), 64);
  EXPECT_EQ(inner.load(), 64 * 64);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  rc::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives the exception and remains usable.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, 1, [&](std::size_t lo, std::size_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DeterministicSumAcrossThreadCounts) {
  // Per-slot writes + ordered reduce: any thread count gives the same bits.
  std::vector<double> data(10'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto blocked_sum = [&](std::size_t threads) {
    rc::ThreadPool pool(threads);
    constexpr std::size_t kChunk = 64;
    std::vector<double> partial((data.size() + kChunk - 1) / kChunk, 0.0);
    pool.parallel_for(0, partial.size(), 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t c = lo; c < hi; ++c) {
        double acc = 0.0;
        const std::size_t end = std::min(data.size(), (c + 1) * kChunk);
        for (std::size_t i = c * kChunk; i < end; ++i) acc += data[i];
        partial[c] = acc;
      }
    });
    return std::accumulate(partial.begin(), partial.end(), 0.0);
  };
  const double s1 = blocked_sum(1);
  EXPECT_EQ(s1, blocked_sum(2));
  EXPECT_EQ(s1, blocked_sum(8));
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(rc::ThreadPool::default_thread_count(), 1u);
  EXPECT_GE(rc::ThreadPool::global().size(), 1u);
}
