// The common::simd determinism contract: the std-simd backend and the
// 4-wide unrolled fallback must return bit-identical results for every
// operation, at every length (aligned, unaligned, and all tail remainders),
// and flipping the runtime toggle must never change the output of any
// production path — reductions, kernel matrices, scaler passes, or a full
// SVR training run.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "ml/kernel.hpp"
#include "ml/matrix.hpp"
#include "ml/scaler.hpp"
#include "ml/svr.hpp"
#include "ml/synthetic.hpp"

namespace rc = repro::common;
namespace rs = repro::common::simd;
namespace rm = repro::ml;

namespace {

// The lengths the issue calls out: every tail remainder (1..9), a
// mid-sized odd length, and a long vector.
const std::vector<std::size_t> kLengths = {1, 2, 3, 4, 5, 6, 7, 8, 9, 31, 1000};

/// Restores the runtime SIMD toggle when the test scope ends.
struct SimdGuard {
  bool saved = rs::enabled();
  ~SimdGuard() { rs::set_enabled(saved); }
};

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  rc::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::bit_cast<std::uint64_t>(a) << " vs "
         << std::bit_cast<std::uint64_t>(b) << ")";
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

TEST(SimdTest, DotVectorMatchesUnrolledAtEveryLength) {
  for (std::size_t n : kLengths) {
    const auto a = random_vector(n, 0xA0 + n);
    const auto b = random_vector(n, 0xB0 + n);
    EXPECT_TRUE(bits_equal(rs::detail::dot_vector(a.data(), b.data(), n),
                           rs::detail::dot_unrolled(a.data(), b.data(), n)))
        << "n=" << n;
  }
}

TEST(SimdTest, SquaredDistanceVectorMatchesUnrolledAtEveryLength) {
  for (std::size_t n : kLengths) {
    const auto a = random_vector(n, 0xC0 + n);
    const auto b = random_vector(n, 0xD0 + n);
    EXPECT_TRUE(
        bits_equal(rs::detail::squared_distance_vector(a.data(), b.data(), n),
                   rs::detail::squared_distance_unrolled(a.data(), b.data(), n)))
        << "n=" << n;
  }
}

TEST(SimdTest, UnalignedOperandsMatch) {
  // Offset both operands by one double so neither is 32-byte aligned; the
  // backends use element-aligned loads, so the bits must not change.
  for (std::size_t n : kLengths) {
    const auto a = random_vector(n + 1, 0xE0 + n);
    const auto b = random_vector(n + 1, 0xF0 + n);
    EXPECT_TRUE(bits_equal(rs::detail::dot_vector(a.data() + 1, b.data() + 1, n),
                           rs::detail::dot_unrolled(a.data() + 1, b.data() + 1, n)))
        << "n=" << n;
    EXPECT_TRUE(bits_equal(
        rs::detail::squared_distance_vector(a.data() + 1, b.data() + 1, n),
        rs::detail::squared_distance_unrolled(a.data() + 1, b.data() + 1, n)))
        << "n=" << n;
  }
}

TEST(SimdTest, RuntimeToggleNeverChangesDispatchedResults) {
  SimdGuard guard;
  for (std::size_t n : kLengths) {
    const auto a = random_vector(n, 0x1A + n);
    const auto b = random_vector(n, 0x2B + n);
    rs::set_enabled(true);
    const double dot_on = rs::dot(a, b);
    const double sqd_on = rs::squared_distance(a, b);
    rs::set_enabled(false);
    EXPECT_TRUE(bits_equal(dot_on, rs::dot(a, b))) << "n=" << n;
    EXPECT_TRUE(bits_equal(sqd_on, rs::squared_distance(a, b))) << "n=" << n;
  }
}

TEST(SimdTest, ExpOneTracksLibmAndHandlesEdges) {
  EXPECT_EQ(rs::exp_one(0.0), 1.0);
  EXPECT_EQ(rs::exp_one(-0.0), 1.0);
  EXPECT_EQ(rs::exp_one(-800.0), 0.0);
  EXPECT_TRUE(std::isinf(rs::exp_one(800.0)));
  EXPECT_TRUE(std::isnan(rs::exp_one(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_EQ(rs::exp_one(-std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_TRUE(std::isinf(rs::exp_one(std::numeric_limits<double>::infinity())));
  // The k = 1024 band just below true overflow must stay finite (regression:
  // the 2^k scale used to hit the Inf exponent pattern for x > ~709.44).
  for (double x : {709.4, 709.5, 709.7}) {
    const double ours = rs::exp_one(x);
    const double libm = std::exp(x);
    EXPECT_TRUE(std::isfinite(ours)) << "x=" << x;
    EXPECT_NEAR(ours, libm, 4.0 * libm * 2.2e-16) << "x=" << x;
  }
  rc::Xoshiro256 rng(0xE4B);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-700.0, 700.0);
    const double ours = rs::exp_one(x);
    const double libm = std::exp(x);
    EXPECT_NEAR(ours, libm, 4.0 * std::abs(libm) * 2.2e-16) << "x=" << x;
  }
}

TEST(SimdTest, ExpBatchBitIdenticalToExpOneAcrossBackends) {
  SimdGuard guard;
  for (std::size_t n : kLengths) {
    std::vector<double> x(n);
    rc::Xoshiro256 rng(0xEB + n);
    for (auto& v : x) v = rng.uniform(-80.0, 0.0);

    std::vector<double> loop(n);
    for (std::size_t i = 0; i < n; ++i) loop[i] = rs::exp_one(x[i]);

    std::vector<double> batch_on(n);
    std::vector<double> batch_off(n);
    rs::set_enabled(true);
    rs::exp_batch(batch_on, x);
    rs::set_enabled(false);
    rs::exp_batch(batch_off, x);
    EXPECT_TRUE(bitwise_equal(batch_on, loop)) << "n=" << n;
    EXPECT_TRUE(bitwise_equal(batch_off, loop)) << "n=" << n;
  }
}

TEST(SimdTest, BatchedKernelRowMatchesSingleEvaluations) {
  SimdGuard guard;
  rm::Matrix x;
  std::vector<double> unused;
  rm::make_synthetic_regression(53, 7, 0xBA7C, x, unused);
  const rm::KernelFunction kernels[] = {rm::KernelFunction::linear(),
                                        rm::KernelFunction::rbf(0.37),
                                        rm::KernelFunction::polynomial(3, 0.5, 1.0)};
  for (const auto& kernel : kernels) {
    for (bool on : {true, false}) {
      rs::set_enabled(on);
      std::vector<double> batch(x.rows());
      kernel.evaluate_row(x.row(3), x, 0, x.rows(), batch);
      for (std::size_t j = 0; j < x.rows(); ++j) {
        EXPECT_TRUE(bits_equal(batch[j], kernel(x.row(3), x.row(j))))
            << rm::to_string(kernel.type) << " simd=" << on << " j=" << j;
      }
    }
  }
}

TEST(SimdTest, MlDotForwardsToSimdLayer) {
  const auto a = random_vector(13, 0x3C);
  const auto b = random_vector(13, 0x4D);
  EXPECT_TRUE(bits_equal(rm::dot(a, b), rs::dot(a, b)));
  EXPECT_TRUE(bits_equal(rm::squared_distance(a, b), rs::squared_distance(a, b)));
}

TEST(SimdTest, KernelMatrixBitIdenticalAcrossBackends) {
  SimdGuard guard;
  constexpr std::size_t kN = 37;  // deliberately not a multiple of the lane width
  constexpr std::size_t kDim = 9;
  rm::Matrix x;
  std::vector<double> unused;
  rm::make_synthetic_regression(kN, kDim, 0x51D, x, unused);

  const rm::KernelFunction kernels[] = {rm::KernelFunction::linear(),
                                        rm::KernelFunction::rbf(0.37),
                                        rm::KernelFunction::polynomial(3, 0.5, 1.0)};
  for (const auto& kernel : kernels) {
    const auto build = [&] {
      std::vector<double> k;
      k.reserve(kN * kN);
      for (std::size_t i = 0; i < kN; ++i) {
        for (std::size_t j = 0; j < kN; ++j) k.push_back(kernel(x.row(i), x.row(j)));
      }
      return k;
    };
    rs::set_enabled(true);
    const auto k_simd = build();
    rs::set_enabled(false);
    const auto k_scalar = build();
    EXPECT_TRUE(bitwise_equal(k_simd, k_scalar))
        << "kernel=" << rm::to_string(kernel.type);
  }
}

TEST(SimdTest, MinMaxScalerBitIdenticalAcrossBackends) {
  SimdGuard guard;
  rm::Matrix x;
  std::vector<double> unused;
  rm::make_synthetic_regression(41, 7, 0x5CA1E, x, unused);

  rs::set_enabled(true);
  rm::MinMaxScaler scaler_on;
  const rm::Matrix t_on = scaler_on.fit_transform(x);
  rs::set_enabled(false);
  rm::MinMaxScaler scaler_off;
  const rm::Matrix t_off = scaler_off.fit_transform(x);

  EXPECT_TRUE(bitwise_equal(scaler_on.mins(), scaler_off.mins()));
  EXPECT_TRUE(bitwise_equal(scaler_on.maxs(), scaler_off.maxs()));
  EXPECT_TRUE(bitwise_equal(t_on.data(), t_off.data()));

  const auto row = random_vector(7, 0x11);
  rs::set_enabled(true);
  const auto inv_on = scaler_on.inverse_transform(row);
  rs::set_enabled(false);
  const auto inv_off = scaler_off.inverse_transform(row);
  EXPECT_TRUE(bitwise_equal(inv_on, inv_off));
}

TEST(SimdTest, MinMaxHandlesSignedZeroTiesIdentically) {
  // std::min(+0.0, -0.0) keeps the first argument; the vector backend must
  // reproduce that tie-breaking bit for bit (regression: stdx::min keeps
  // the second argument, minpd-style).
  SimdGuard guard;
  rm::Matrix x(2, 5);
  for (std::size_t c = 0; c < 5; ++c) {
    x(0, c) = (c % 2 == 0) ? 0.0 : -0.0;
    x(1, c) = (c % 2 == 0) ? -0.0 : 0.0;
  }
  const auto signs = [](const std::vector<double>& v) {
    std::vector<bool> s(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) s[i] = std::signbit(v[i]);
    return s;
  };
  rs::set_enabled(true);
  rm::MinMaxScaler on;
  on.fit(x);
  rs::set_enabled(false);
  rm::MinMaxScaler off;
  off.fit(x);
  EXPECT_EQ(signs(on.mins()), signs(off.mins()));
  EXPECT_EQ(signs(on.maxs()), signs(off.maxs()));
  EXPECT_TRUE(bitwise_equal(on.mins(), off.mins()));
  EXPECT_TRUE(bitwise_equal(on.maxs(), off.maxs()));
}

TEST(SimdTest, GradientUpdateBitIdenticalAcrossBackends) {
  SimdGuard guard;
  for (std::size_t n : kLengths) {
    std::vector<float> a(n);
    std::vector<float> b(n);
    rc::Xoshiro256 rng(0x6EAD + n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      b[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    auto grad_on = random_vector(n, 0x77 + n);
    auto grad_off = grad_on;
    rs::set_enabled(true);
    rs::add_scaled_pair_f32(grad_on, a.data(), b.data(), 0.3, -1.7, -1.0);
    rs::set_enabled(false);
    rs::add_scaled_pair_f32(grad_off, a.data(), b.data(), 0.3, -1.7, -1.0);
    EXPECT_TRUE(bitwise_equal(grad_on, grad_off)) << "n=" << n;
  }
}

TEST(SimdTest, SvrTrainingBitIdenticalAcrossBackends) {
  // End to end: a full SMO training run (kernel cache, gradient updates,
  // prediction) must serialize to the same bytes with the vector backend on
  // and off.
  SimdGuard guard;
  rm::Matrix x;
  std::vector<double> y;
  rm::make_synthetic_regression(90, 9, 0x57E9, x, y);
  rm::SvrParams params;
  params.kernel = rm::KernelFunction::rbf(0.5);
  params.c = 10.0;

  const auto train = [&] {
    rm::Svr svr(params);
    svr.fit(x, y);
    return svr.serialize();
  };
  rs::set_enabled(true);
  const auto model_on = train();
  rs::set_enabled(false);
  const auto model_off = train();
  EXPECT_EQ(model_on, model_off);
}
