// Determinism guarantees of the parallel prediction stack: every parallel
// path (thread pool sizes 1, 2 and 8) must produce bit-identical output to
// the serial path — predictions, cross-validation scores, matrix products
// and Pareto fronts. Also property-tests the O(n log n) skyline against the
// paper's O(n^2) Algorithm 1 on random inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/dataset.hpp"
#include "ml/matrix.hpp"
#include "ml/model_selection.hpp"
#include "ml/svr.hpp"
#include "ml/synthetic.hpp"
#include "pareto/pareto.hpp"

namespace rc = repro::common;
namespace rm = repro::ml;
namespace rp = repro::pareto;

namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

constexpr auto make_dataset = rm::make_synthetic_regression;

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Restores the default global pool when the test scope ends.
struct PoolGuard {
  ~PoolGuard() { rc::ThreadPool::set_global_threads(0); }
};

}  // namespace

TEST(DeterminismTest, SvrTrainingIsThreadCountInvariant) {
  PoolGuard guard;
  rm::Matrix x;
  std::vector<double> y;
  make_dataset(120, 8, 0xD373C7, x, y);

  rm::SvrParams params;
  params.kernel = rm::KernelFunction::rbf(0.5);
  params.c = 10.0;
  params.max_iter = 50'000;

  std::string reference;
  for (std::size_t threads : kThreadCounts) {
    rc::ThreadPool::set_global_threads(threads);
    rm::Svr svr(params);
    svr.fit(x, y);
    const auto serialized = svr.serialize();
    if (reference.empty()) {
      reference = serialized;
    } else {
      EXPECT_EQ(serialized, reference) << "threads=" << threads;
    }
  }
}

TEST(DeterminismTest, SvrBatchPredictMatchesPredictOneBitForBit) {
  PoolGuard guard;
  rm::Matrix x;
  std::vector<double> y;
  make_dataset(100, 8, 0xABCDEF, x, y);
  rm::SvrParams params;
  params.kernel = rm::KernelFunction::rbf(0.5);
  params.c = 10.0;
  rm::Svr svr(params);
  svr.fit(x, y);

  rm::Matrix x_test;
  std::vector<double> unused;
  make_dataset(257, 8, 0x7E57, x_test, unused);

  // Serial reference: the per-point path.
  std::vector<double> reference;
  reference.reserve(x_test.rows());
  for (std::size_t r = 0; r < x_test.rows(); ++r) {
    reference.push_back(svr.predict_one(x_test.row(r)));
  }

  for (std::size_t threads : kThreadCounts) {
    rc::ThreadPool::set_global_threads(threads);
    const auto batch = svr.predict(x_test);
    EXPECT_TRUE(bitwise_equal(batch, reference)) << "threads=" << threads;
  }
}

TEST(DeterminismTest, MatrixMultiplyIsThreadCountInvariant) {
  PoolGuard guard;
  rm::Matrix a;
  rm::Matrix b;
  std::vector<double> unused;
  make_dataset(70, 45, 0xAA, a, unused);
  make_dataset(45, 33, 0xBB, b, unused);

  rc::ThreadPool::set_global_threads(1);
  const rm::Matrix reference = a.multiply(b);
  for (std::size_t threads : kThreadCounts) {
    rc::ThreadPool::set_global_threads(threads);
    const rm::Matrix out = a.multiply(b);
    ASSERT_EQ(out.rows(), reference.rows());
    ASSERT_EQ(out.cols(), reference.cols());
    EXPECT_TRUE(bitwise_equal(out.data(), reference.data())) << "threads=" << threads;
  }
}

TEST(DeterminismTest, CrossValidationScoreIsThreadCountInvariant) {
  PoolGuard guard;
  rm::Dataset data;
  rm::Matrix x;
  std::vector<double> y;
  make_dataset(90, 6, 0xCF01D, x, y);
  for (std::size_t r = 0; r < x.rows(); ++r) data.add(x.row(r), y[r]);

  const auto factory = [] {
    rm::SvrParams params;
    params.kernel = rm::KernelFunction::rbf(0.5);
    params.c = 10.0;
    return std::make_unique<rm::Svr>(params);
  };

  double reference = 0.0;
  for (std::size_t threads : kThreadCounts) {
    rc::ThreadPool::set_global_threads(threads);
    const double rmse = rm::cross_val_rmse(data, 5, 0x5EED, factory);
    if (threads == 1) {
      reference = rmse;
    } else {
      EXPECT_EQ(rmse, reference) << "threads=" << threads;
    }
  }
}

TEST(DeterminismTest, ParetoFrontIdenticalAcrossThreadCountsAndAlgorithms) {
  PoolGuard guard;
  rc::Xoshiro256 rng(0xF207);
  std::vector<rp::Point> pts(4000);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.uniform(0.5, 1.5), rng.uniform(0.5, 1.5),
              static_cast<std::uint32_t>(i)};
  }
  const auto naive = rp::pareto_set_naive(pts);
  for (std::size_t threads : kThreadCounts) {
    rc::ThreadPool::set_global_threads(threads);
    const auto fast = rp::pareto_set_fast(pts);
    EXPECT_TRUE(rp::same_front(naive, fast)) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SkylineMatchesNaiveOnRandomInputs) {
  // Property test over many random clouds, including heavy duplicate and
  // collinear cases (quantized coordinates force objective ties).
  rc::Xoshiro256 rng(0x5C11E);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(300);
    const bool quantize = trial % 2 == 0;
    std::vector<rp::Point> pts(n);
    for (std::size_t i = 0; i < n; ++i) {
      double s = rng.uniform(0.5, 1.5);
      double e = rng.uniform(0.5, 1.5);
      if (quantize) {
        s = std::round(s * 8.0) / 8.0;
        e = std::round(e * 8.0) / 8.0;
      }
      pts[i] = {s, e, static_cast<std::uint32_t>(i)};
    }
    const auto naive = rp::pareto_set_naive(pts);
    const auto fast = rp::pareto_set_fast(pts);
    EXPECT_TRUE(rp::same_front(naive, fast))
        << "trial " << trial << " n=" << n << " quantize=" << quantize;
    EXPECT_EQ(naive.size(), fast.size()) << "trial " << trial;
  }
}
