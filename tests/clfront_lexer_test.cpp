// Lexer tests: token kinds, literals with OpenCL suffixes, comments,
// operators and error reporting.
#include <gtest/gtest.h>

#include "clfront/lexer.hpp"

namespace rc = repro::clfront;

namespace {

std::vector<rc::Token> lex_ok(const std::string& src) {
  rc::Lexer lexer(src);
  auto tokens = lexer.tokenize();
  EXPECT_TRUE(tokens.ok()) << (tokens.ok() ? "" : tokens.error().message);
  return tokens.ok() ? std::move(tokens).take() : std::vector<rc::Token>{};
}

}  // namespace

TEST(LexerTest, EmptyInputYieldsEof) {
  const auto tokens = lex_ok("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, rc::TokenKind::kEof);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  const auto tokens = lex_ok("kernel void my_fn");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, rc::TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].text, "kernel");
  EXPECT_EQ(tokens[1].kind, rc::TokenKind::kKeyword);
  EXPECT_EQ(tokens[2].kind, rc::TokenKind::kIdentifier);
  EXPECT_EQ(tokens[2].text, "my_fn");
}

TEST(LexerTest, IntegerLiterals) {
  const auto tokens = lex_ok("42 0x1F 7u 100UL");
  EXPECT_EQ(tokens[0].int_value, 42u);
  EXPECT_EQ(tokens[1].int_value, 31u);
  EXPECT_TRUE(tokens[2].is_unsigned);
  EXPECT_EQ(tokens[3].int_value, 100u);
}

TEST(LexerTest, FloatLiterals) {
  const auto tokens = lex_ok("1.5f 2.0 3e2 4.5e-1f .25f");
  EXPECT_EQ(tokens[0].kind, rc::TokenKind::kFloatLiteral);
  EXPECT_TRUE(tokens[0].is_float32);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.5);
  EXPECT_FALSE(tokens[1].is_float32);  // no 'f' suffix -> double
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 300.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.45);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 0.25);
}

TEST(LexerTest, TrailingDotFloat) {
  const auto tokens = lex_ok("1.f");
  EXPECT_EQ(tokens[0].kind, rc::TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.0);
}

TEST(LexerTest, CommentsAreSkipped) {
  const auto tokens = lex_ok("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(tokens.size(), 4u);  // a b c eof
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, PreprocessorLinesAreSkipped) {
  const auto tokens = lex_ok("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nx");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "x");
}

TEST(LexerTest, MultiCharOperators) {
  const auto tokens = lex_ok("<< >> <= >= == != && || += -= <<= >>= ++ -- ->");
  const rc::TokenKind expected[] = {
      rc::TokenKind::kShl, rc::TokenKind::kShr, rc::TokenKind::kLe,
      rc::TokenKind::kGe, rc::TokenKind::kEq, rc::TokenKind::kNe,
      rc::TokenKind::kAmpAmp, rc::TokenKind::kPipePipe, rc::TokenKind::kPlusAssign,
      rc::TokenKind::kMinusAssign, rc::TokenKind::kShlAssign, rc::TokenKind::kShrAssign,
      rc::TokenKind::kPlusPlus, rc::TokenKind::kMinusMinus, rc::TokenKind::kArrow,
  };
  ASSERT_EQ(tokens.size(), std::size(expected) + 1);
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, SourceLocationsTrackLinesAndColumns) {
  const auto tokens = lex_ok("a\n  b");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[1].loc.column, 3);
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  rc::Lexer lexer("a /* never closed");
  EXPECT_FALSE(lexer.tokenize().ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  rc::Lexer lexer("int a = $;");
  const auto result = lexer.tokenize();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("unexpected character"), std::string::npos);
}

TEST(LexerTest, MalformedExponentFails) {
  rc::Lexer lexer("1e+");
  EXPECT_FALSE(lexer.tokenize().ok());
}

TEST(LexerTest, KeywordPredicate) {
  EXPECT_TRUE(rc::is_keyword("__global"));
  EXPECT_TRUE(rc::is_keyword("float"));
  EXPECT_FALSE(rc::is_keyword("float4"));  // type *names* are contextual
  EXPECT_FALSE(rc::is_keyword("banana"));
}
