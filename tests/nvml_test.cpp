// Tests for the nvmlsim C API and the RAII wrapper: NVML-faithful
// initialization semantics, clock enumeration, set/clamp behaviour and
// power reads.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/kernel_profile.hpp"
#include "nvml/nvmlsim.h"
#include "nvml/wrapper.hpp"

namespace {

repro::gpusim::KernelProfile demo_profile() {
  repro::gpusim::KernelProfile p;
  p.name = "nvml_demo";
  p.set_op(repro::gpusim::OpClass::kFloatMul, 200);
  p.set_op(repro::gpusim::OpClass::kGlobalAccess, 8);
  p.work_items = 1 << 20;
  return p;
}

/// Fixture guaranteeing nvmlInit/nvmlShutdown pairing per test.
class NvmlFixture : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(nvmlInit(), NVML_SUCCESS); }
  void TearDown() override { nvmlShutdown(); }

  nvmlDevice_t titan() {
    nvmlDevice_t dev = nullptr;
    EXPECT_EQ(nvmlDeviceGetHandleByIndex(0, &dev), NVML_SUCCESS);
    return dev;
  }
};

}  // namespace

TEST(NvmlLifecycleTest, CallsFailBeforeInit) {
  unsigned count = 0;
  EXPECT_EQ(nvmlDeviceGetCount(&count), NVML_ERROR_UNINITIALIZED);
  nvmlDevice_t dev = nullptr;
  EXPECT_EQ(nvmlDeviceGetHandleByIndex(0, &dev), NVML_ERROR_UNINITIALIZED);
  EXPECT_EQ(nvmlShutdown(), NVML_ERROR_UNINITIALIZED);
}

TEST(NvmlLifecycleTest, InitShutdownCycle) {
  ASSERT_EQ(nvmlInit(), NVML_SUCCESS);
  unsigned count = 0;
  EXPECT_EQ(nvmlDeviceGetCount(&count), NVML_SUCCESS);
  EXPECT_EQ(count, 2u);  // Titan X + Tesla P100
  EXPECT_EQ(nvmlShutdown(), NVML_SUCCESS);
  EXPECT_EQ(nvmlDeviceGetCount(&count), NVML_ERROR_UNINITIALIZED);
}

TEST(NvmlLifecycleTest, ErrorStringsAreHuman) {
  EXPECT_NE(std::string(nvmlErrorString(NVML_ERROR_UNINITIALIZED)).find("nvmlInit"),
            std::string::npos);
}

TEST_F(NvmlFixture, DeviceNames) {
  char name[128];
  ASSERT_EQ(nvmlDeviceGetName(titan(), name, sizeof(name)), NVML_SUCCESS);
  EXPECT_NE(std::string(name).find("Titan X"), std::string::npos);
  nvmlDevice_t p100 = nullptr;
  ASSERT_EQ(nvmlDeviceGetHandleByIndex(1, &p100), NVML_SUCCESS);
  ASSERT_EQ(nvmlDeviceGetName(p100, name, sizeof(name)), NVML_SUCCESS);
  EXPECT_NE(std::string(name).find("P100"), std::string::npos);
}

TEST_F(NvmlFixture, NameBufferTooSmall) {
  char tiny[4];
  EXPECT_EQ(nvmlDeviceGetName(titan(), tiny, sizeof(tiny)), NVML_ERROR_INSUFFICIENT_SIZE);
}

TEST_F(NvmlFixture, UnknownIndexIsNotFound) {
  nvmlDevice_t dev = nullptr;
  EXPECT_EQ(nvmlDeviceGetHandleByIndex(9, &dev), NVML_ERROR_NOT_FOUND);
}

TEST_F(NvmlFixture, SupportedMemoryClocksDescending) {
  unsigned count = 0;
  ASSERT_EQ(nvmlDeviceGetSupportedMemoryClocks(titan(), &count, nullptr), NVML_SUCCESS);
  ASSERT_EQ(count, 4u);
  std::vector<unsigned> clocks(count);
  ASSERT_EQ(nvmlDeviceGetSupportedMemoryClocks(titan(), &count, clocks.data()),
            NVML_SUCCESS);
  EXPECT_EQ(clocks[0], 3505u);
  EXPECT_EQ(clocks[3], 405u);
}

TEST_F(NvmlFixture, SupportedGraphicsClocksIncludeGrayZone) {
  unsigned count = 0;
  ASSERT_EQ(nvmlDeviceGetSupportedGraphicsClocks(titan(), 3505, &count, nullptr),
            NVML_SUCCESS);
  std::vector<unsigned> clocks(count);
  ASSERT_EQ(nvmlDeviceGetSupportedGraphicsClocks(titan(), 3505, &count, clocks.data()),
            NVML_SUCCESS);
  // The reported list goes beyond the effective 1196 MHz cap (gray points).
  EXPECT_EQ(clocks.front(), 1391u);
  EXPECT_EQ(count, 65u);  // 50 actual + 15 clamped
}

TEST_F(NvmlFixture, GraphicsClocksForUnknownMemoryClockFail) {
  unsigned count = 0;
  EXPECT_EQ(nvmlDeviceGetSupportedGraphicsClocks(titan(), 1234, &count, nullptr),
            NVML_ERROR_NOT_FOUND);
}

TEST_F(NvmlFixture, InsufficientClockBuffer) {
  unsigned count = 1;
  unsigned one = 0;
  EXPECT_EQ(nvmlDeviceGetSupportedMemoryClocks(titan(), &count, &one),
            NVML_ERROR_INSUFFICIENT_SIZE);
  EXPECT_EQ(count, 4u);  // required size reported back
}

TEST_F(NvmlFixture, SetApplicationsClocksAndReadBack) {
  ASSERT_EQ(nvmlDeviceSetApplicationsClocks(titan(), 810, 702), NVML_SUCCESS);
  unsigned clock = 0;
  ASSERT_EQ(nvmlDeviceGetApplicationsClock(titan(), NVML_CLOCK_GRAPHICS, &clock),
            NVML_SUCCESS);
  EXPECT_EQ(clock, 702u);
  ASSERT_EQ(nvmlDeviceGetClockInfo(titan(), NVML_CLOCK_MEM, &clock), NVML_SUCCESS);
  EXPECT_EQ(clock, 810u);
}

TEST_F(NvmlFixture, OverCapRequestSilentlyClamps) {
  // The paper's observation: requests above ~1202 MHz are accepted but the
  // effective clock stays at the cap.
  ASSERT_EQ(nvmlDeviceSetApplicationsClocks(titan(), 3505, 1391), NVML_SUCCESS);
  unsigned requested = 0;
  unsigned effective = 0;
  ASSERT_EQ(nvmlDeviceGetApplicationsClock(titan(), NVML_CLOCK_GRAPHICS, &requested),
            NVML_SUCCESS);
  ASSERT_EQ(nvmlDeviceGetClockInfo(titan(), NVML_CLOCK_GRAPHICS, &effective),
            NVML_SUCCESS);
  EXPECT_EQ(requested, 1391u);
  EXPECT_EQ(effective, 1196u);
}

TEST_F(NvmlFixture, UnsupportedComboRejected) {
  // mem-L only pairs with low core clocks.
  EXPECT_EQ(nvmlDeviceSetApplicationsClocks(titan(), 405, 1001), NVML_ERROR_NOT_SUPPORTED);
}

TEST_F(NvmlFixture, ResetRestoresDefaults) {
  ASSERT_EQ(nvmlDeviceSetApplicationsClocks(titan(), 810, 403), NVML_SUCCESS);
  ASSERT_EQ(nvmlDeviceResetApplicationsClocks(titan()), NVML_SUCCESS);
  unsigned clock = 0;
  ASSERT_EQ(nvmlDeviceGetClockInfo(titan(), NVML_CLOCK_GRAPHICS, &clock), NVML_SUCCESS);
  EXPECT_EQ(clock, 1001u);
}

TEST_F(NvmlFixture, IdlePowerIsLow) {
  unsigned mw = 0;
  ASSERT_EQ(nvmlDeviceGetPowerUsage(titan(), &mw), NVML_SUCCESS);
  EXPECT_GT(mw, 5000u);    // > 5 W
  EXPECT_LT(mw, 80000u);   // < 80 W with no workload bound
}

TEST_F(NvmlFixture, WorkloadRaisesPower) {
  unsigned idle = 0;
  ASSERT_EQ(nvmlDeviceGetPowerUsage(titan(), &idle), NVML_SUCCESS);
  const auto profile = demo_profile();
  ASSERT_EQ(nvmlsimDeviceBindWorkload(titan(), &profile), NVML_SUCCESS);
  unsigned busy = 0;
  ASSERT_EQ(nvmlDeviceGetPowerUsage(titan(), &busy), NVML_SUCCESS);
  EXPECT_GT(busy, idle);
  ASSERT_EQ(nvmlsimDeviceBindWorkload(titan(), nullptr), NVML_SUCCESS);
}

TEST_F(NvmlFixture, RunWorkloadReturnsTimeAndEnergy) {
  const auto profile = demo_profile();
  ASSERT_EQ(nvmlsimDeviceBindWorkload(titan(), &profile), NVML_SUCCESS);
  double ms = 0.0;
  double joule = 0.0;
  ASSERT_EQ(nvmlsimDeviceRunWorkload(titan(), &ms, &joule), NVML_SUCCESS);
  EXPECT_GT(ms, 0.0);
  EXPECT_GT(joule, 0.0);
}

TEST_F(NvmlFixture, RunWorkloadWithoutBindingFails) {
  double ms = 0.0;
  EXPECT_EQ(nvmlsimDeviceRunWorkload(titan(), &ms, nullptr), NVML_ERROR_NOT_FOUND);
}

TEST_F(NvmlFixture, DownclockingMemoryLowersMemoryBoundPower) {
  auto profile = demo_profile();
  profile.set_op(repro::gpusim::OpClass::kGlobalAccess, 64);
  profile.cache_hit_rate = 0.05;
  ASSERT_EQ(nvmlsimDeviceBindWorkload(titan(), &profile), NVML_SUCCESS);
  unsigned at_default = 0;
  ASSERT_EQ(nvmlDeviceGetPowerUsage(titan(), &at_default), NVML_SUCCESS);
  ASSERT_EQ(nvmlDeviceSetApplicationsClocks(titan(), 810, 1001), NVML_SUCCESS);
  unsigned at_mem_l = 0;
  ASSERT_EQ(nvmlDeviceGetPowerUsage(titan(), &at_mem_l), NVML_SUCCESS);
  EXPECT_LT(at_mem_l, at_default);
}

// --- C++ wrapper ------------------------------------------------------------------

TEST(NvmlWrapperTest, SessionAndDeviceFlow) {
  repro::nvml::Session session;
  ASSERT_TRUE(session.ok());
  ASSERT_EQ(session.device_count().value(), 2u);

  const auto device = repro::nvml::Device::by_index(0);
  ASSERT_TRUE(device.ok());
  const auto& titan = device.value();

  EXPECT_NE(titan.name().value().find("Titan"), std::string::npos);
  const auto mems = titan.supported_memory_clocks().value();
  EXPECT_EQ(mems.size(), 4u);
  const auto cores = titan.supported_graphics_clocks(810).value();
  EXPECT_GT(cores.size(), 70u);

  ASSERT_TRUE(titan.set_applications_clocks(3505, 1391).ok());
  EXPECT_EQ(titan.applications_clocks().value().core_mhz, 1391);
  EXPECT_EQ(titan.effective_clocks().value().core_mhz, 1196);

  const auto profile = demo_profile();
  ASSERT_TRUE(titan.bind_workload(&profile).ok());
  const auto run = titan.run_workload();
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run.value().time_ms, 0.0);
  EXPECT_GT(titan.power_usage_watts().value(), 20.0);
  ASSERT_TRUE(titan.bind_workload(nullptr).ok());
  ASSERT_TRUE(titan.reset_applications_clocks().ok());
}

TEST(NvmlWrapperTest, ErrorsMapToLibraryErrors) {
  repro::nvml::Session session;
  ASSERT_TRUE(session.ok());
  const auto device = repro::nvml::Device::by_index(0);
  ASSERT_TRUE(device.ok());
  const auto st = device.value().set_applications_clocks(405, 1001);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, repro::common::ErrorCode::kUnsupported);
}
