// Lowering + feature-extraction tests: instruction classification, vector
// width weighting, address-space mapping, builtin handling, static loop
// semantics and the normalized feature vector of §3.2.
#include <gtest/gtest.h>

#include "clfront/features.hpp"
#include "clfront/lower.hpp"
#include "clfront/parser.hpp"

namespace rc = repro::clfront;

namespace {

rc::StaticFeatures features_of(const std::string& src, const std::string& kernel = "") {
  auto f = rc::extract_features_from_source(src, kernel);
  EXPECT_TRUE(f.ok()) << (f.ok() ? "" : f.error().message);
  return f.ok() ? std::move(f).take() : rc::StaticFeatures{};
}

rc::IrModule lower_ok(const std::string& src) {
  auto unit = rc::parse_opencl(src);
  EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().message);
  auto module = rc::lower_to_ir(unit.value());
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().message);
  return module.ok() ? std::move(module).take() : rc::IrModule{};
}

}  // namespace

// --- classification --------------------------------------------------------------

TEST(LowerTest, IntegerArithmeticClasses) {
  const auto f = features_of(
      "kernel void k(int a, int b) {"
      " int s = a + b;"       // int_add
      " int m = a * b;"       // int_mul
      " int d = a / b;"       // int_div
      " int r = a % b;"       // int_div (rem)
      " int x = a ^ b;"       // int_bw
      " int sh = a << 2;"     // int_bw
      "}");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kIntAdd), 1.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kIntMul), 1.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kIntDiv), 2.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kIntBw), 2.0);
}

TEST(LowerTest, FloatArithmeticClasses) {
  const auto f = features_of(
      "kernel void k(float a, float b) {"
      " float s = a + b;"
      " float m = a * b;"
      " float d = a / b;"
      "}");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatAdd), 1.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatMul), 1.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatDiv), 1.0);
}

TEST(LowerTest, MixedOperandsPromoteToFloat) {
  const auto f = features_of("kernel void k(float a, int b) { float r = a + b; }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatAdd), 1.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kIntAdd), 0.0);
}

TEST(LowerTest, ComparisonsCountAsAddClass) {
  const auto f = features_of(
      "kernel void k(int a, float b) { int x = a < 3; int y = b > 0.0f; }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kIntAdd), 1.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatAdd), 1.0);
}

// --- memory accesses -----------------------------------------------------------------

TEST(LowerTest, GlobalLoadAndStore) {
  const auto f = features_of("kernel void k(global float* a) { a[1] = a[0]; }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kGlAccess), 2.0);  // one load + one store
}

TEST(LowerTest, LocalMemoryAccesses) {
  const auto f = features_of(
      "kernel void k() { local float t[64]; t[0] = 1.0f; float x = t[1]; }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kLocAccess), 2.0);
}

TEST(LowerTest, ConstantMemoryCountsAsGlobal) {
  const auto f = features_of("kernel void k(constant float* c) { float x = c[0]; }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kGlAccess), 1.0);
}

TEST(LowerTest, PrivateArraysAreFree) {
  const auto f = features_of("kernel void k() { float t[8]; t[0] = 1.0f; float x = t[1]; }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kGlAccess), 0.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kLocAccess), 0.0);
}

TEST(LowerTest, CompoundAssignToMemoryLoadsAndStores) {
  const auto f = features_of("kernel void k(global float* a) { a[0] += 1.0f; }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kGlAccess), 2.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatAdd), 1.0);
}

TEST(LowerTest, VectorAccessWeightsByWidth) {
  const auto f = features_of("kernel void k(global float4* a) { a[1] = a[0]; }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kGlAccess), 8.0);  // 4 + 4
}

TEST(LowerTest, VectorArithmeticWeightsByWidth) {
  const auto f = features_of("kernel void k(float4 a, float4 b) { float4 c = a + b; }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatAdd), 4.0);
}

// --- builtins -------------------------------------------------------------------------

TEST(LowerTest, SpecialFunctions) {
  const auto f = features_of(
      "kernel void k(float x) { float a = sin(x); float b = exp(x);"
      " float c = native_sqrt(x); float d = pow(x, 2.0f); }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kSf), 4.0);
}

TEST(LowerTest, RuntimeQueriesAreFree) {
  const auto f = features_of("kernel void k(global int* a) { a[0] = 0; int i = 0; i = i + get_global_id(0); }");
  // get_global_id contributes nothing; only the surrounding add counts.
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kIntAdd), 1.0);
}

TEST(LowerTest, BarrierIsFree) {
  const auto f = features_of(
      "kernel void k() { local float t[8]; t[0] = 0.0f; barrier(CLK_LOCAL_MEM_FENCE); }");
  EXPECT_DOUBLE_EQ(f.total(), 1.0);  // only the local store
}

TEST(LowerTest, FmaExpandsToMulAdd) {
  const auto f = features_of("kernel void k(float a) { float r = fma(a, a, a); }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatMul), 1.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatAdd), 1.0);
}

TEST(LowerTest, MadOnVectorWeightsByWidth) {
  const auto f = features_of(
      "kernel void k(float4 a, float4 b, float4 c) { float4 r = mad(a, b, c); }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatMul), 4.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatAdd), 4.0);
}

TEST(LowerTest, DotProductExpansion) {
  const auto f = features_of("kernel void k(float4 a, float4 b) { float d = dot(a, b); }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatMul), 4.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatAdd), 3.0);
}

TEST(LowerTest, LengthAddsSqrt) {
  const auto f = features_of("kernel void k(float4 a) { float l = length(a); }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kSf), 1.0);
}

TEST(LowerTest, CheapMathByOperandType) {
  const auto f = features_of(
      "kernel void k(float a, int b) { float x = fmin(a, 1.0f); int y = max(b, 3); }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatAdd), 1.0);
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kIntAdd), 1.0);
}

TEST(LowerTest, VloadVstore) {
  const auto f = features_of(
      "kernel void k(global float* p) { float4 v = vload4(0, p); vstore4(v, 0, p); }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kGlAccess), 8.0);
}

TEST(LowerTest, AtomicCountsGlobalAccessAndIntOp) {
  const auto f = features_of("kernel void k(global int* p) { atomic_add(p, 1); }");
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kGlAccess), 1.0);  // the atomic RMW
  EXPECT_GE(f.count(rc::FeatureIndex::kIntAdd), 1.0);
}

// --- static loop semantics -------------------------------------------------------------

TEST(LowerTest, LoopBodyCountsOnce) {
  const auto once = features_of("kernel void k(float a) { float x = a * a; }");
  const auto looped = features_of(
      "kernel void k(float a) { for (int i = 0; i < 1000; i++) { float x = a * a; } }");
  // Static counting: the multiply appears once regardless of trip count.
  EXPECT_DOUBLE_EQ(once.count(rc::FeatureIndex::kFloatMul),
                   looped.count(rc::FeatureIndex::kFloatMul));
}

TEST(LowerTest, UserFunctionCallsAreInlinedStatically) {
  const auto f = features_of(
      "float helper(float x) { return x * x; }\n"
      "kernel void k(float a) { float r = helper(a) + helper(a); }");
  // Two call sites -> helper's multiply counted twice.
  EXPECT_DOUBLE_EQ(f.count(rc::FeatureIndex::kFloatMul), 2.0);
}

TEST(LowerTest, RecursionIsRejected) {
  auto unit = rc::parse_opencl(
      "float bad(float x) { return bad(x); }\n"
      "kernel void k(float a) { float r = bad(a); }");
  ASSERT_TRUE(unit.ok());
  auto module = rc::lower_to_ir(unit.value());
  ASSERT_TRUE(module.ok());
  EXPECT_FALSE(rc::extract_features(module.value(), "k").ok());
}

// --- error handling ---------------------------------------------------------------------

TEST(LowerTest, UndeclaredIdentifierFails) {
  auto unit = rc::parse_opencl("kernel void k() { int a = nonexistent; }");
  ASSERT_TRUE(unit.ok());
  EXPECT_FALSE(rc::lower_to_ir(unit.value()).ok());
}

TEST(LowerTest, UnknownFunctionFails) {
  auto unit = rc::parse_opencl("kernel void k(float a) { float r = frobnicate(a); }");
  ASSERT_TRUE(unit.ok());
  EXPECT_FALSE(rc::lower_to_ir(unit.value()).ok());
}

TEST(LowerTest, BreakOutsideLoopFails) {
  auto unit = rc::parse_opencl("kernel void k() { break; }");
  ASSERT_TRUE(unit.ok());
  EXPECT_FALSE(rc::lower_to_ir(unit.value()).ok());
}

TEST(LowerTest, StoreToConstantFails) {
  auto unit = rc::parse_opencl("kernel void k(constant float* c) { c[0] = 1.0f; }");
  ASSERT_TRUE(unit.ok());
  EXPECT_FALSE(rc::lower_to_ir(unit.value()).ok());
}

// --- IR structure -----------------------------------------------------------------------

TEST(IrTest, VerifyPassesOnLoweredModules) {
  const auto module = lower_ok(
      "kernel void k(global float* a, int n) {"
      " for (int i = 0; i < n; i++) { if (i > 2) { a[i] = 0.0f; } else { continue; } } }");
  EXPECT_TRUE(rc::verify_ir(module).ok());
}

TEST(IrTest, DumpContainsOpcodes) {
  const auto module = lower_ok("kernel void k(global float* a) { a[0] = a[1] * 2.0f; }");
  const auto dump = rc::dump_ir(module);
  EXPECT_NE(dump.find("gload"), std::string::npos);
  EXPECT_NE(dump.find("gstore"), std::string::npos);
  EXPECT_NE(dump.find("fmul"), std::string::npos);
}

TEST(IrTest, LoopsEmitLabelsAndBranches) {
  const auto module =
      lower_ok("kernel void k(int n) { int s = 0; while (n > 0) { n = n - 1; } }");
  const auto dump = rc::dump_ir(module);
  EXPECT_NE(dump.find("while_cond"), std::string::npos);
  EXPECT_NE(dump.find("condbr"), std::string::npos);
}

// --- normalized feature vector -------------------------------------------------------------

TEST(FeaturesTest, NormalizedSumsToOne) {
  const auto f = features_of(
      "kernel void k(global float* a) { float x = a[0]; x = x * 2.0f; a[1] = x + 1.0f; }");
  const auto norm = f.normalized();
  double sum = 0.0;
  for (double v : norm) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FeaturesTest, SameMixSameNormalizedVector) {
  // Paper §3.2: codes with the same arithmetic intensity but different
  // instruction counts share a feature representation.
  const auto small = features_of(
      "kernel void k(float a) { float x = a + a; float y = x * x; }");
  const auto large = features_of(
      "kernel void k(float a) {"
      " float x = a + a; float y = x * x;"
      " float x2 = y + y; float y2 = x2 * x2;"
      " float x3 = y2 + y2; float y3 = x3 * x3; }");
  const auto ns = small.normalized();
  const auto nl = large.normalized();
  for (std::size_t i = 0; i < rc::kNumFeatures; ++i) {
    EXPECT_NEAR(ns[i], nl[i], 1e-12) << "feature " << i;
  }
}

TEST(FeaturesTest, EmptyKernelHasZeroVector) {
  const auto f = features_of("kernel void k() { }");
  EXPECT_DOUBLE_EQ(f.total(), 0.0);
  for (double v : f.normalized()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FeaturesTest, KernelSelectionByName) {
  const std::string src =
      "kernel void a(float x) { float r = x + x; }\n"
      "kernel void b(float x) { float r = x * x; }";
  EXPECT_DOUBLE_EQ(features_of(src, "a").count(rc::FeatureIndex::kFloatAdd), 1.0);
  EXPECT_DOUBLE_EQ(features_of(src, "b").count(rc::FeatureIndex::kFloatMul), 1.0);
  // Empty name -> first kernel.
  EXPECT_EQ(features_of(src).kernel_name, "a");
}

TEST(FeaturesTest, MissingKernelIsError) {
  EXPECT_FALSE(rc::extract_features_from_source("kernel void k() {}", "nope").ok());
  EXPECT_FALSE(rc::extract_features_from_source("float f(float x) { return x; }").ok());
}

TEST(FeaturesTest, FeatureNamesMatchPaperOrder) {
  EXPECT_STREQ(rc::feature_name(rc::FeatureIndex::kIntAdd), "int_add");
  EXPECT_STREQ(rc::feature_name(rc::FeatureIndex::kSf), "sf");
  EXPECT_STREQ(rc::feature_name(rc::FeatureIndex::kLocAccess), "loc_access");
}
