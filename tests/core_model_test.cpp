// Tests for the core predictor: feature assembly, training, Pareto
// prediction with the mem-L heuristic, and model persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <span>

#include "benchgen/benchgen.hpp"
#include "core/features.hpp"
#include "core/model.hpp"
#include "gpusim/simulator.hpp"
#include "kernels/kernels.hpp"
#include "pareto/pareto.hpp"

namespace rco = repro::core;
namespace rg = repro::gpusim;
namespace rb = repro::benchgen;

namespace {

const rg::GpuSimulator& sim() {
  static const rg::GpuSimulator s(rg::DeviceModel::titan_x());
  return s;
}

/// A small but representative training subset (keeps unit tests fast).
std::span<const rb::MicroBenchmark> small_suite() {
  static const auto full = rb::generate_training_suite().value();
  static const std::vector<rb::MicroBenchmark> subset = [] {
    std::vector<rb::MicroBenchmark> out;
    for (std::size_t i = 0; i < full.size(); i += 3) out.push_back(full[i]);
    return out;
  }();
  return subset;
}

const rco::FrequencyModel& trained_model() {
  static const auto model = [] {
    rco::TrainingOptions options;
    auto m = rco::FrequencyModel::train(sim(), small_suite(), options);
    EXPECT_TRUE(m.ok()) << (m.ok() ? "" : m.error().message);
    return std::move(m).take();
  }();
  return model;
}

}  // namespace

// --- feature assembly -----------------------------------------------------------

TEST(FeatureAssemblerTest, BoundsFromDomain) {
  const rco::FeatureAssembler fa(sim().freq());
  EXPECT_DOUBLE_EQ(fa.core_min(), 135.0);
  EXPECT_DOUBLE_EQ(fa.core_max(), 1196.0);
  EXPECT_DOUBLE_EQ(fa.mem_min(), 405.0);
  EXPECT_DOUBLE_EQ(fa.mem_max(), 3505.0);
}

TEST(FeatureAssemblerTest, FrequencyNormalizationHitsUnitInterval) {
  const rco::FeatureAssembler fa(sim().freq());
  EXPECT_DOUBLE_EQ(fa.normalize_core(135), 0.0);
  EXPECT_DOUBLE_EQ(fa.normalize_core(1196), 1.0);
  EXPECT_DOUBLE_EQ(fa.normalize_mem(405), 0.0);
  EXPECT_DOUBLE_EQ(fa.normalize_mem(3505), 1.0);
}

TEST(FeatureAssemblerTest, AssembledVectorLayout) {
  const rco::FeatureAssembler fa(sim().freq());
  const auto& mb = small_suite()[0];
  const auto w = fa.assemble(mb.features, {1001, 3505});
  ASSERT_EQ(w.size(), rco::kFeatureDim);
  // Last two components are the normalized frequencies (§3.2).
  EXPECT_NEAR(w[10], (1001.0 - 135.0) / (1196.0 - 135.0), 1e-12);
  EXPECT_DOUBLE_EQ(w[11], 1.0);
  // Static part matches the normalized feature vector.
  const auto norm = mb.features.normalized();
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(w[i], norm[i]);
}

TEST(FeatureAssemblerTest, SingleMemoryClockDeviceNormalizesToZero) {
  const rco::FeatureAssembler fa(rg::FrequencyDomain::tesla_p100());
  EXPECT_DOUBLE_EQ(fa.normalize_mem(715), 0.0);
}

// --- training --------------------------------------------------------------------

TEST(FrequencyModelTest, TrainingProducesConvergedModels) {
  const auto& model = trained_model();
  EXPECT_TRUE(model.speedup_model().fitted());
  EXPECT_TRUE(model.energy_model().fitted());
  EXPECT_EQ(model.training_configs().size(), 40u);
  EXPECT_EQ(model.training_samples(), small_suite().size() * 40u);
}

TEST(FrequencyModelTest, EmptySuiteIsRejected) {
  rco::TrainingOptions options;
  const auto result = rco::FrequencyModel::train(sim(), {}, options);
  EXPECT_FALSE(result.ok());
}

TEST(FrequencyModelTest, PredictionsAtDefaultAreNearUnity) {
  const auto& model = trained_model();
  // Predicting a *training* kernel at the default configuration should give
  // speedup and normalized energy near 1.
  const auto& mb = small_suite()[1];
  const auto def = sim().freq().default_config();
  EXPECT_NEAR(model.predict_speedup(mb.features, def), 1.0, 0.2);
  EXPECT_NEAR(model.predict_energy(mb.features, def), 1.0, 0.2);
}

TEST(FrequencyModelTest, SpeedupGrowsWithCoreClockForComputeKernel) {
  const auto& model = trained_model();
  const auto* knn = repro::kernels::find_benchmark("k-NN");
  const auto f = repro::kernels::benchmark_features(*knn).value();
  const double low = model.predict_speedup(f, {559, 3505});
  const double high = model.predict_speedup(f, {1196, 3505});
  EXPECT_GT(high, low + 0.2);
}

TEST(FrequencyModelTest, PredictAllCoversRequestedConfigs) {
  const auto& model = trained_model();
  const auto& mb = small_suite()[2];
  const auto configs = sim().freq().sample_configs(40);
  const auto pred = model.predict_all(mb.features, configs);
  ASSERT_EQ(pred.size(), configs.size());
  for (const auto& p : pred) {
    EXPECT_TRUE(std::isfinite(p.speedup));
    EXPECT_TRUE(std::isfinite(p.energy));
    EXPECT_FALSE(p.heuristic);
  }
}

// --- Pareto prediction ----------------------------------------------------------------

TEST(FrequencyModelTest, PredictParetoAppendsMemLHeuristic) {
  const auto& model = trained_model();
  const auto* bench = repro::kernels::find_benchmark("Convolution");
  const auto f = repro::kernels::benchmark_features(*bench).value();
  const auto pareto = model.predict_pareto(f);
  ASSERT_FALSE(pareto.empty());
  // Exactly one heuristic point, and it is the highest-core mem-L config.
  std::size_t heuristic_count = 0;
  for (const auto& p : pareto) {
    if (p.heuristic) {
      ++heuristic_count;
      EXPECT_EQ(p.config.mem_mhz, 405);
      EXPECT_EQ(p.config.core_mhz, 403);
    } else {
      EXPECT_NE(p.config.mem_mhz, 405) << "mem-L must not be modeled (§4.5)";
    }
  }
  EXPECT_EQ(heuristic_count, 1u);
}

TEST(FrequencyModelTest, PredictedSetIsMutuallyNonDominated) {
  const auto& model = trained_model();
  const auto* bench = repro::kernels::find_benchmark("MD");
  const auto f = repro::kernels::benchmark_features(*bench).value();
  const auto pareto = model.predict_pareto(f);
  for (const auto& a : pareto) {
    if (a.heuristic) continue;
    for (const auto& b : pareto) {
      if (b.heuristic) continue;
      repro::pareto::Point pa{a.speedup, a.energy, 0};
      repro::pareto::Point pb{b.speedup, b.energy, 1};
      EXPECT_FALSE(repro::pareto::dominates(pa, pb));
    }
  }
}

TEST(FrequencyModelTest, ParetoSubsetOfRequestedConfigs) {
  const auto& model = trained_model();
  const auto* bench = repro::kernels::find_benchmark("Flte");
  const auto f = repro::kernels::benchmark_features(*bench).value();
  const auto configs = sim().freq().sample_configs(40);
  const auto pareto = model.predict_pareto(f, configs);
  for (const auto& p : pareto) {
    EXPECT_TRUE(sim().freq().is_actual(p.config));
  }
}

// --- persistence -------------------------------------------------------------------------

TEST(FrequencyModelTest, SerializeRoundTripPreservesPredictions) {
  const auto& model = trained_model();
  const auto restored = rco::FrequencyModel::deserialize(model.serialize());
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  const auto& mb = small_suite()[0];
  for (const auto& config : model.training_configs()) {
    EXPECT_DOUBLE_EQ(restored.value().predict_speedup(mb.features, config),
                     model.predict_speedup(mb.features, config));
    EXPECT_DOUBLE_EQ(restored.value().predict_energy(mb.features, config),
                     model.predict_energy(mb.features, config));
  }
}

TEST(FrequencyModelTest, SaveAndLoadFile) {
  const auto& model = trained_model();
  const std::string path =
      (std::filesystem::temp_directory_path() / "gpufreq_model_test.txt").string();
  ASSERT_TRUE(model.save(path).ok());
  const auto loaded = rco::FrequencyModel::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().training_configs().size(), model.training_configs().size());
  std::filesystem::remove(path);
}

TEST(FrequencyModelTest, TrainOrLoadUsesCache) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gpufreq_model_cache_test.txt").string();
  std::filesystem::remove(path);
  rco::TrainingOptions options;
  const auto first = rco::FrequencyModel::train_or_load(sim(), small_suite(), options, path);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(std::filesystem::exists(path));
  // Second call must load (same predictions, no retraining side effects).
  const auto second = rco::FrequencyModel::train_or_load(sim(), small_suite(), options, path);
  ASSERT_TRUE(second.ok());
  const auto& mb = small_suite()[0];
  EXPECT_DOUBLE_EQ(second.value().predict_speedup(mb.features, {1001, 3505}),
                   first.value().predict_speedup(mb.features, {1001, 3505}));
  std::filesystem::remove(path);
}

TEST(FrequencyModelTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(rco::FrequencyModel::deserialize("nonsense").ok());
  EXPECT_FALSE(rco::FrequencyModel::deserialize("gpufreq_model v1\ntruncated").ok());
}

// --- ablation hook -------------------------------------------------------------------------

TEST(FrequencyModelTest, ExcludeMemLFromTrainingShrinksConfigSet) {
  rco::TrainingOptions options;
  options.exclude_mem_L_from_training = true;
  const auto model = rco::FrequencyModel::train(sim(), small_suite(), options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().training_configs().size(), 34u);  // 40 - 6 mem-L
  for (const auto& c : model.value().training_configs()) EXPECT_NE(c.mem_mhz, 405);
}
