// Tests for the Pareto machinery: dominance semantics (paper §3.4),
// Algorithm 1 vs the O(n log n) front, hypervolume and the Table-2 metrics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pareto/front_metrics.hpp"
#include "pareto/hypervolume.hpp"
#include "pareto/knee.hpp"
#include "pareto/pareto.hpp"

namespace rp = repro::pareto;

namespace {

rp::Point pt(double s, double e, std::uint32_t id = 0) { return {s, e, id}; }

std::vector<rp::Point> random_points(std::size_t n, std::uint64_t seed) {
  repro::common::Xoshiro256 rng(seed);
  std::vector<rp::Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(0.05, 1.3), rng.uniform(0.4, 1.9),
                   static_cast<std::uint32_t>(i)});
  }
  return out;
}

}  // namespace

// --- dominance ----------------------------------------------------------------

TEST(DominanceTest, StrictlyBetterDominates) {
  EXPECT_TRUE(rp::dominates(pt(1.0, 0.5), pt(0.9, 0.6)));
}

TEST(DominanceTest, EqualPointsDoNotDominate) {
  EXPECT_FALSE(rp::dominates(pt(1.0, 0.5), pt(1.0, 0.5)));
}

TEST(DominanceTest, PaperCaseOneEqualSpeedupLowerEnergy) {
  // s_i >= s_j and e_i < e_j.
  EXPECT_TRUE(rp::dominates(pt(1.0, 0.4), pt(1.0, 0.5)));
}

TEST(DominanceTest, PaperCaseTwoHigherSpeedupEqualEnergy) {
  // s_i > s_j and e_i <= e_j.
  EXPECT_TRUE(rp::dominates(pt(1.1, 0.5), pt(1.0, 0.5)));
}

TEST(DominanceTest, TradeOffPointsAreIncomparable) {
  EXPECT_FALSE(rp::dominates(pt(1.0, 0.5), pt(0.9, 0.4)));
  EXPECT_FALSE(rp::dominates(pt(0.9, 0.4), pt(1.0, 0.5)));
}

TEST(DominanceTest, IsNonDominatedAgainstSet) {
  const std::vector<rp::Point> set{pt(1.0, 1.0), pt(0.8, 0.6)};
  EXPECT_TRUE(rp::is_non_dominated(pt(1.1, 1.5), set));
  EXPECT_FALSE(rp::is_non_dominated(pt(0.7, 0.7), set));
}

// --- fronts ---------------------------------------------------------------------

TEST(ParetoSetTest, EmptyInput) {
  EXPECT_TRUE(rp::pareto_set_naive({}).empty());
  EXPECT_TRUE(rp::pareto_set_fast({}).empty());
}

TEST(ParetoSetTest, SinglePoint) {
  const std::vector<rp::Point> pts{pt(1.0, 1.0, 5)};
  const auto front = rp::pareto_set_naive(pts);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].id, 5u);
}

TEST(ParetoSetTest, KnownFront) {
  // Front: (1.2, 1.0), (1.0, 0.8), (0.5, 0.5); dominated: the other two.
  const std::vector<rp::Point> pts{pt(1.2, 1.0, 0), pt(1.0, 0.8, 1), pt(0.5, 0.5, 2),
                                   pt(0.9, 0.9, 3), pt(0.4, 0.6, 4)};
  auto front = rp::pareto_set_naive(pts);
  rp::sort_front(front);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].id, 2u);
  EXPECT_EQ(front[1].id, 1u);
  EXPECT_EQ(front[2].id, 0u);
}

TEST(ParetoSetTest, DuplicatesOfFrontPointAreKept) {
  const std::vector<rp::Point> pts{pt(1.0, 0.5, 0), pt(1.0, 0.5, 1), pt(0.2, 1.5, 2)};
  const auto naive = rp::pareto_set_naive(pts);
  const auto fast = rp::pareto_set_fast(pts);
  EXPECT_EQ(naive.size(), 2u);
  EXPECT_EQ(fast.size(), 2u);
}

TEST(ParetoSetTest, AllPointsOnFront) {
  // A strictly trade-off chain (higher speedup costs more energy): all
  // points are non-dominated.
  std::vector<rp::Point> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(pt(0.1 * (i + 1), 0.5 + 0.1 * i, static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(rp::pareto_set_naive(pts).size(), 10u);
  EXPECT_EQ(rp::pareto_set_fast(pts).size(), 10u);
}

TEST(ParetoSetTest, FrontIsMutuallyNonDominated) {
  const auto pts = random_points(200, 99);
  const auto front = rp::pareto_set_naive(pts);
  for (const auto& a : front) {
    for (const auto& b : front) {
      EXPECT_FALSE(rp::dominates(a, b));
    }
  }
}

TEST(ParetoSetTest, EveryDroppedPointIsDominated) {
  const auto pts = random_points(150, 123);
  const auto front = rp::pareto_set_fast(pts);
  for (const auto& p : pts) {
    const bool on_front =
        std::any_of(front.begin(), front.end(), [&](const rp::Point& f) {
          return f.id == p.id;
        });
    if (!on_front) {
      EXPECT_FALSE(rp::is_non_dominated(p, pts)) << "dropped point not dominated";
    }
  }
}

/// Property sweep: the paper's Algorithm 1 and the sort-based front must
/// agree on random clouds of many sizes and seeds.
class ParetoEquivalenceTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParetoEquivalenceTest, NaiveMatchesFast) {
  const auto [size, seed] = GetParam();
  const auto pts = random_points(static_cast<std::size_t>(size),
                                 static_cast<std::uint64_t>(seed));
  const auto naive = rp::pareto_set_naive(pts);
  const auto fast = rp::pareto_set_fast(pts);
  EXPECT_TRUE(rp::same_front(naive, fast))
      << "size=" << size << " seed=" << seed << " naive=" << naive.size()
      << " fast=" << fast.size();
}

INSTANTIATE_TEST_SUITE_P(
    RandomClouds, ParetoEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 10, 40, 100, 400),
                       ::testing::Values(1, 7, 42, 1234, 98765)));

// --- hypervolume ------------------------------------------------------------------

TEST(HypervolumeTest, EmptySetIsZero) { EXPECT_DOUBLE_EQ(rp::hypervolume({}), 0.0); }

TEST(HypervolumeTest, SinglePointRectangle) {
  const std::vector<rp::Point> pts{pt(1.0, 1.0)};
  // Rectangle [0,1] x [1,2] w.r.t. reference (0, 2).
  EXPECT_DOUBLE_EQ(rp::hypervolume(pts), 1.0);
}

TEST(HypervolumeTest, TwoPointStaircase) {
  const std::vector<rp::Point> pts{pt(1.0, 1.0), pt(0.5, 0.6)};
  EXPECT_NEAR(rp::hypervolume(pts), 1.0 + 0.5 * 0.4, 1e-12);
}

TEST(HypervolumeTest, DominatedPointAddsNothing) {
  const std::vector<rp::Point> front{pt(1.0, 1.0)};
  const std::vector<rp::Point> with_dominated{pt(1.0, 1.0), pt(0.8, 1.2)};
  EXPECT_DOUBLE_EQ(rp::hypervolume(front), rp::hypervolume(with_dominated));
}

TEST(HypervolumeTest, PointsOutsideReferenceBoxAreClipped) {
  const std::vector<rp::Point> pts{pt(1.0, 2.5)};  // energy above ref 2.0
  EXPECT_DOUBLE_EQ(rp::hypervolume(pts), 0.0);
}

TEST(HypervolumeTest, CustomReferencePoint) {
  const std::vector<rp::Point> pts{pt(1.0, 1.0)};
  EXPECT_DOUBLE_EQ(rp::hypervolume(pts, {0.0, 3.0}), 2.0);
}

TEST(HypervolumeTest, MonotoneInAddedNonDominatedPoints) {
  auto pts = random_points(50, 3);
  const double base = rp::hypervolume(pts);
  pts.push_back(pt(1.4, 0.3));  // dominates a large region
  EXPECT_GT(rp::hypervolume(pts), base);
}

// --- coverage difference ------------------------------------------------------------

TEST(CoverageTest, IdenticalSetsHaveZeroDifference) {
  const auto pts = random_points(60, 17);
  const auto front = rp::pareto_set_fast(pts);
  EXPECT_NEAR(rp::coverage_difference(front, front), 0.0, 1e-12);
}

TEST(CoverageTest, SubsetApproximationIsNonNegative) {
  const auto pts = random_points(80, 21);
  auto front = rp::pareto_set_fast(pts);
  rp::sort_front(front);
  // Use every other front point as the "approximation".
  std::vector<rp::Point> approx;
  for (std::size_t i = 0; i < front.size(); i += 2) approx.push_back(front[i]);
  const double d = rp::coverage_difference(front, approx);
  EXPECT_GE(d, -1e-12);
}

TEST(CoverageTest, PerfectApproximationBeatsWorseOne) {
  const auto pts = random_points(80, 33);
  auto front = rp::pareto_set_fast(pts);
  std::vector<rp::Point> poor{front[0]};
  const double d_perfect = rp::coverage_difference(front, front);
  const double d_poor = rp::coverage_difference(front, poor);
  EXPECT_LE(d_perfect, d_poor + 1e-12);
}

// --- front metrics -------------------------------------------------------------------

TEST(FrontMetricsTest, ExtremePoints) {
  const std::vector<rp::Point> front{pt(0.5, 0.5, 0), pt(1.0, 0.9, 1), pt(1.2, 1.4, 2)};
  EXPECT_EQ(rp::max_speedup_point(front).id, 2u);
  EXPECT_EQ(rp::min_energy_point(front).id, 0u);
}

TEST(FrontMetricsTest, ExtremeTieBreaking) {
  const std::vector<rp::Point> front{pt(1.0, 0.8, 0), pt(1.0, 0.6, 1)};
  EXPECT_EQ(rp::max_speedup_point(front).id, 1u);  // same speedup, less energy
}

TEST(FrontMetricsTest, EmptyFrontThrows) {
  EXPECT_THROW((void)rp::max_speedup_point({}), std::invalid_argument);
  EXPECT_THROW((void)rp::min_energy_point({}), std::invalid_argument);
}

TEST(FrontMetricsTest, EvaluateAgainstSelfIsExact) {
  const auto pts = random_points(100, 55);
  const auto front = rp::pareto_set_fast(pts);
  const auto eval = rp::evaluate_front(front, front);
  EXPECT_NEAR(eval.coverage, 0.0, 1e-12);
  EXPECT_EQ(eval.predicted_size, front.size());
  EXPECT_EQ(eval.optimal_size, front.size());
  EXPECT_DOUBLE_EQ(eval.max_speedup.d_speedup, 0.0);
  EXPECT_DOUBLE_EQ(eval.min_energy.d_energy, 0.0);
}

TEST(FrontMetricsTest, EvaluateReportsExtremeDistance) {
  const std::vector<rp::Point> optimal{pt(1.2, 1.0, 0), pt(0.6, 0.5, 1)};
  const std::vector<rp::Point> predicted{pt(1.1, 1.05, 0), pt(0.6, 0.5, 1)};
  const auto eval = rp::evaluate_front(optimal, predicted);
  EXPECT_NEAR(eval.max_speedup.d_speedup, 0.1, 1e-12);
  EXPECT_NEAR(eval.max_speedup.d_energy, 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(eval.min_energy.d_speedup, 0.0);
}

// --- knee selection ----------------------------------------------------------------

TEST(KneeTest, UtopiaKneeOnSymmetricFrontIsTheMiddle) {
  // Three-point front: extremes and a balanced middle.
  const std::vector<rp::Point> front{pt(1.0, 1.0, 0), pt(0.6, 0.5, 1), pt(0.82, 0.7, 2)};
  EXPECT_EQ(rp::knee_by_utopia_distance(front).id, 2u);
}

TEST(KneeTest, SinglePointFrontIsItsOwnKnee) {
  const std::vector<rp::Point> front{pt(0.9, 0.8, 7)};
  EXPECT_EQ(rp::knee_by_utopia_distance(front).id, 7u);
  EXPECT_EQ(rp::knee_by_hypervolume(front).id, 7u);
}

TEST(KneeTest, EmptyFrontThrows) {
  EXPECT_THROW((void)rp::knee_by_utopia_distance({}), std::invalid_argument);
  EXPECT_THROW((void)rp::knee_by_hypervolume({}), std::invalid_argument);
}

TEST(KneeTest, KneeIsAlwaysAFrontMember) {
  for (std::uint64_t seed : {3u, 11u, 29u}) {
    const auto pts = random_points(120, seed);
    const auto front = rp::pareto_set_fast(pts);
    const auto knee = rp::knee_by_utopia_distance(front);
    const bool member = std::any_of(front.begin(), front.end(), [&](const rp::Point& p) {
      return p.id == knee.id;
    });
    EXPECT_TRUE(member) << "seed " << seed;
  }
}

TEST(KneeTest, HypervolumeContributionsSumBelowTotal) {
  const auto pts = random_points(80, 13);
  const auto front = rp::pareto_set_fast(pts);
  const auto contributions = rp::hypervolume_contributions(front);
  ASSERT_EQ(contributions.size(), front.size());
  double sum = 0.0;
  for (double c : contributions) {
    EXPECT_GE(c, -1e-12);
    sum += c;
  }
  // Exclusive contributions never exceed the total dominated area.
  EXPECT_LE(sum, rp::hypervolume(front) + 1e-9);
}

TEST(KneeTest, HypervolumeKneeMaximisesContribution) {
  const auto pts = random_points(60, 17);
  const auto front = rp::pareto_set_fast(pts);
  const auto knee = rp::knee_by_hypervolume(front);
  const auto contributions = rp::hypervolume_contributions(front);
  double best = 0.0;
  for (std::size_t i = 0; i < front.size(); ++i) {
    best = std::max(best, contributions[i]);
    if (front[i].id == knee.id) {
      EXPECT_DOUBLE_EQ(contributions[i],
                       *std::max_element(contributions.begin(), contributions.end()));
    }
  }
}
