// Tests for the ML library: matrix/solvers, scaling, datasets, kernels and
// all four regressor families (SVR, OLS/ridge, LASSO, polynomial).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ml/dataset.hpp"
#include "ml/kernel.hpp"
#include "ml/lasso.hpp"
#include "ml/linear.hpp"
#include "ml/matrix.hpp"
#include "ml/model.hpp"
#include "ml/poly.hpp"
#include "ml/scaler.hpp"
#include "ml/svr.hpp"

namespace rm = repro::ml;

namespace {

/// y = 2*x0 - 3*x1 + 0.5 with optional noise.
rm::Dataset linear_dataset(std::size_t n, double noise, std::uint64_t seed) {
  repro::common::Xoshiro256 rng(seed);
  rm::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    const double y = 2.0 * x0 - 3.0 * x1 + 0.5 + noise * rng.gaussian();
    const std::vector<double> row{x0, x1};
    d.add(row, y);
  }
  return d;
}

/// y = sin(4 x0) + x1^2, a smooth nonlinear target.
rm::Dataset nonlinear_dataset(std::size_t n, std::uint64_t seed) {
  repro::common::Xoshiro256 rng(seed);
  rm::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    const std::vector<double> row{x0, x1};
    d.add(row, std::sin(4.0 * x0) + x1 * x1);
  }
  return d;
}

}  // namespace

// --- Matrix ---------------------------------------------------------------------

TEST(MatrixTest, InitializerListAndAccess) {
  const rm::Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((rm::Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(MatrixTest, PushRowGrowsAndChecksWidth) {
  rm::Matrix m(0, 0);
  const std::vector<double> r1{1, 2, 3};
  m.push_row(r1);
  EXPECT_EQ(m.cols(), 3u);
  const std::vector<double> bad{1, 2};
  EXPECT_THROW(m.push_row(bad), std::invalid_argument);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  const rm::Matrix a{{1, 2}, {3, 4}};
  const rm::Matrix b{{5, 6}, {7, 8}};
  const auto c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  const rm::Matrix a{{1, 2, 3}, {4, 5, 6}};
  const auto t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MatVec) {
  const rm::Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{1, 1};
  const auto out = a.multiply(v);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(MatrixTest, DotAndDistance) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(rm::dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(rm::squared_distance(a, b), 27.0);
}

TEST(MatrixTest, SolveSpdRecoversSolution) {
  // A = [[4,1],[1,3]], x = [1, 2] -> b = [6, 7].
  rm::Matrix a{{4, 1}, {1, 3}};
  const auto x = rm::solve_spd(a, {6, 7});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(MatrixTest, SolveSpdRejectsIndefinite) {
  rm::Matrix a{{0, 2}, {2, 0}};
  EXPECT_THROW((void)rm::solve_spd(a, {1, 1}), std::runtime_error);
}

// --- Scaler ----------------------------------------------------------------------

TEST(ScalerTest, MapsToUnitInterval) {
  rm::Matrix x{{0, 10}, {5, 20}, {10, 30}};
  rm::MinMaxScaler scaler;
  const auto t = scaler.fit_transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(t(1, 1), 0.5);
}

TEST(ScalerTest, ConstantColumnMapsToZero) {
  rm::Matrix x{{7, 1}, {7, 2}};
  rm::MinMaxScaler scaler;
  const auto t = scaler.fit_transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 0.0);
}

TEST(ScalerTest, InverseTransformRoundTrip) {
  rm::Matrix x{{1, 100}, {3, 300}};
  rm::MinMaxScaler scaler;
  scaler.fit(x);
  const std::vector<double> row{2.0, 150.0};
  const auto fwd = scaler.transform(row);
  const auto back = scaler.inverse_transform(fwd);
  EXPECT_NEAR(back[0], 2.0, 1e-12);
  EXPECT_NEAR(back[1], 150.0, 1e-12);
}

TEST(ScalerTest, SerializeRoundTrip) {
  rm::Matrix x{{1, -5}, {9, 5}};
  rm::MinMaxScaler scaler;
  scaler.fit(x);
  const auto restored = rm::MinMaxScaler::deserialize(scaler.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().mins(), scaler.mins());
  EXPECT_EQ(restored.value().maxs(), scaler.maxs());
}

// --- Dataset ---------------------------------------------------------------------

TEST(DatasetTest, SplitSizesAndDisjointness) {
  const auto d = linear_dataset(100, 0.0, 1);
  const auto [train, test] = rm::train_test_split(d, 0.25, 42);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
}

TEST(DatasetTest, KFoldCoversEverything) {
  const auto d = linear_dataset(53, 0.0, 2);
  const auto folds = rm::k_fold(d, 5, 7);
  ASSERT_EQ(folds.size(), 5u);
  std::size_t total_val = 0;
  for (const auto& [train, val] : folds) {
    EXPECT_EQ(train.size() + val.size(), d.size());
    total_val += val.size();
  }
  EXPECT_EQ(total_val, d.size());
}

TEST(DatasetTest, KFoldRejectsBadK) {
  const auto d = linear_dataset(10, 0.0, 3);
  EXPECT_THROW((void)rm::k_fold(d, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)rm::k_fold(d, 11, 0), std::invalid_argument);
}

// --- Kernels ---------------------------------------------------------------------

TEST(KernelTest, LinearIsDotProduct) {
  const auto k = rm::KernelFunction::linear();
  const std::vector<double> a{1, 2};
  const std::vector<double> b{3, 4};
  EXPECT_DOUBLE_EQ(k(a, b), 11.0);
}

TEST(KernelTest, RbfAtZeroDistanceIsOne) {
  const auto k = rm::KernelFunction::rbf(0.1);
  const std::vector<double> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(k(a, a), 1.0);
}

TEST(KernelTest, RbfDecaysWithDistance) {
  const auto k = rm::KernelFunction::rbf(0.5);
  const std::vector<double> a{0, 0};
  const std::vector<double> b{1, 0};
  const std::vector<double> c{2, 0};
  EXPECT_GT(k(a, b), k(a, c));
}

TEST(KernelTest, PolynomialKnownValue) {
  const auto k = rm::KernelFunction::polynomial(2, 1.0, 1.0);
  const std::vector<double> a{1, 1};
  const std::vector<double> b{1, 1};
  EXPECT_DOUBLE_EQ(k(a, b), 9.0);  // (2 + 1)^2
}

TEST(KernelTest, NameRoundTrip) {
  for (auto t : {rm::KernelType::kLinear, rm::KernelType::kRbf, rm::KernelType::kPolynomial}) {
    const auto parsed = rm::kernel_type_from_string(rm::to_string(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
  EXPECT_FALSE(rm::kernel_type_from_string("sigmoid").ok());
}

// --- Linear regression --------------------------------------------------------------

TEST(OlsTest, RecoversExactCoefficients) {
  const auto d = linear_dataset(200, 0.0, 11);
  rm::LinearRegression ols;
  ols.fit(d.x, d.y);
  ASSERT_EQ(ols.coefficients().size(), 2u);
  EXPECT_NEAR(ols.coefficients()[0], 2.0, 1e-6);
  EXPECT_NEAR(ols.coefficients()[1], -3.0, 1e-6);
  EXPECT_NEAR(ols.intercept(), 0.5, 1e-6);
}

TEST(OlsTest, PredictsHeldOut) {
  const auto d = linear_dataset(300, 0.01, 13);
  const auto [train, test] = rm::train_test_split(d, 0.3, 5);
  rm::LinearRegression ols;
  ols.fit(train.x, train.y);
  const auto pred = ols.predict(test.x);
  EXPECT_LT(repro::common::rmse(pred, test.y), 0.05);
}

TEST(RidgeTest, ShrinksCoefficients) {
  const auto d = linear_dataset(100, 0.0, 17);
  rm::LinearRegression ols;
  rm::LinearRegression ridge(100.0);
  ols.fit(d.x, d.y);
  ridge.fit(d.x, d.y);
  EXPECT_LT(std::abs(ridge.coefficients()[0]), std::abs(ols.coefficients()[0]));
}

TEST(OlsTest, WidthMismatchThrows) {
  const auto d = linear_dataset(10, 0.0, 19);
  rm::LinearRegression ols;
  ols.fit(d.x, d.y);
  const std::vector<double> bad{1.0};
  EXPECT_THROW((void)ols.predict_one(bad), std::invalid_argument);
}

// --- LASSO ----------------------------------------------------------------------------

TEST(LassoTest, RecoversSparseSignal) {
  // y depends only on x0; x1 and x2 are noise features.
  repro::common::Xoshiro256 rng(23);
  rm::Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    const double x2 = rng.uniform();
    const std::vector<double> row{x0, x1, x2};
    d.add(row, 5.0 * x0 + 1.0);
  }
  rm::Lasso lasso(rm::LassoParams{.alpha = 0.02, .tol = 1e-9, .max_iter = 20000});
  lasso.fit(d.x, d.y);
  EXPECT_GT(lasso.coefficients()[0], 4.0);
  EXPECT_NEAR(lasso.coefficients()[1], 0.0, 0.05);
  EXPECT_NEAR(lasso.coefficients()[2], 0.0, 0.05);
}

TEST(LassoTest, StrongPenaltyZeroesEverything) {
  const auto d = linear_dataset(100, 0.0, 29);
  rm::Lasso lasso(rm::LassoParams{.alpha = 1000.0, .tol = 1e-9, .max_iter = 1000});
  lasso.fit(d.x, d.y);
  for (double c : lasso.coefficients()) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(LassoTest, WeakPenaltyApproachesOls) {
  const auto d = linear_dataset(200, 0.0, 31);
  rm::Lasso lasso(rm::LassoParams{.alpha = 1e-6, .tol = 1e-10, .max_iter = 50000});
  lasso.fit(d.x, d.y);
  EXPECT_NEAR(lasso.coefficients()[0], 2.0, 0.01);
  EXPECT_NEAR(lasso.coefficients()[1], -3.0, 0.01);
}

// --- Polynomial regression ---------------------------------------------------------------

TEST(PolyTest, FitsQuadraticExactly) {
  rm::Dataset d;
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 10.0;
    const std::vector<double> row{x};
    d.add(row, 1.0 + 2.0 * x + 3.0 * x * x);
  }
  rm::PolynomialRegression poly(rm::PolynomialParams{.degree = 2, .l2 = 1e-10});
  poly.fit(d.x, d.y);
  const std::vector<double> probe{0.55};
  EXPECT_NEAR(poly.predict_one(probe), 1.0 + 2.0 * 0.55 + 3.0 * 0.55 * 0.55, 1e-5);
}

TEST(PolyTest, ExpansionContainsInteractions) {
  rm::PolynomialRegression poly(
      rm::PolynomialParams{.degree = 2, .l2 = 1e-8, .interactions = true});
  const std::vector<double> x{2.0, 3.0};
  const auto e = poly.expand(x);
  // [x0, x1, x0^2, x1^2, x0*x1]
  ASSERT_EQ(e.size(), 5u);
  EXPECT_DOUBLE_EQ(e.back(), 6.0);
}

// --- SVR -------------------------------------------------------------------------------

TEST(SvrTest, LinearKernelFitsLinearFunction) {
  const auto d = linear_dataset(150, 0.0, 37);
  rm::SvrParams params;
  params.kernel = rm::KernelFunction::linear();
  params.c = 1000.0;
  params.epsilon = 0.01;
  rm::Svr svr(params);
  svr.fit(d.x, d.y);
  EXPECT_TRUE(svr.training_info().converged);
  const auto pred = svr.predict(d.x);
  // Predictions must track the target within the epsilon tube + slack.
  EXPECT_LT(repro::common::rmse(pred, d.y), 0.05);
}

TEST(SvrTest, RbfKernelFitsNonlinearFunction) {
  const auto d = nonlinear_dataset(300, 41);
  rm::SvrParams params;
  params.kernel = rm::KernelFunction::rbf(2.0);
  params.c = 100.0;
  params.epsilon = 0.01;
  rm::Svr svr(params);
  svr.fit(d.x, d.y);
  const auto pred = svr.predict(d.x);
  EXPECT_LT(repro::common::rmse(pred, d.y), 0.08);
}

TEST(SvrTest, LinearKernelUnderfitsNonlinearTarget) {
  const auto d = nonlinear_dataset(300, 43);
  rm::SvrParams lin;
  lin.kernel = rm::KernelFunction::linear();
  lin.epsilon = 0.01;
  rm::SvrParams rbf;
  rbf.kernel = rm::KernelFunction::rbf(2.0);
  rbf.epsilon = 0.01;
  rm::Svr svr_lin(lin);
  rm::Svr svr_rbf(rbf);
  svr_lin.fit(d.x, d.y);
  svr_rbf.fit(d.x, d.y);
  const double rmse_lin = repro::common::rmse(svr_lin.predict(d.x), d.y);
  const double rmse_rbf = repro::common::rmse(svr_rbf.predict(d.x), d.y);
  EXPECT_GT(rmse_lin, rmse_rbf);
}

TEST(SvrTest, EpsilonTubeLimitsSupportVectors) {
  const auto d = linear_dataset(200, 0.0, 47);
  rm::SvrParams wide;
  wide.kernel = rm::KernelFunction::linear();
  wide.epsilon = 10.0;  // everything inside the tube
  rm::Svr svr(wide);
  svr.fit(d.x, d.y);
  EXPECT_EQ(svr.num_support_vectors(), 0u);
}

TEST(SvrTest, PredictBeforeFitThrows) {
  rm::Svr svr;
  const std::vector<double> x{1.0};
  EXPECT_THROW((void)svr.predict_one(x), std::logic_error);
}

TEST(SvrTest, EmptyTrainingSetThrows) {
  rm::Svr svr;
  rm::Matrix x(0, 0);
  EXPECT_THROW(svr.fit(x, {}), std::invalid_argument);
}

TEST(SvrTest, SerializeRoundTripPreservesPredictions) {
  const auto d = nonlinear_dataset(120, 53);
  rm::SvrParams params;
  params.kernel = rm::KernelFunction::rbf(1.0);
  rm::Svr svr(params);
  svr.fit(d.x, d.y);
  const auto restored = rm::Svr::deserialize(svr.serialize());
  ASSERT_TRUE(restored.ok());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(restored.value().predict_one(d.x.row(i)), svr.predict_one(d.x.row(i)));
  }
}

TEST(SvrTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(rm::Svr::deserialize("not a model").ok());
  EXPECT_FALSE(rm::Svr::deserialize("svr bogus_kernel 0 0 0 1 0.1 0 0 0").ok());
}

/// Parameterized sweep: every kernel family must beat the mean predictor on
/// data it can represent.
class SvrKernelSweep : public ::testing::TestWithParam<rm::KernelType> {};

TEST_P(SvrKernelSweep, BeatsMeanPredictorOnLinearData) {
  const auto d = linear_dataset(150, 0.05, 61);
  rm::SvrParams params;
  switch (GetParam()) {
    case rm::KernelType::kLinear: params.kernel = rm::KernelFunction::linear(); break;
    case rm::KernelType::kRbf: params.kernel = rm::KernelFunction::rbf(1.0); break;
    case rm::KernelType::kPolynomial:
      params.kernel = rm::KernelFunction::polynomial(2, 1.0, 1.0);
      break;
  }
  params.epsilon = 0.05;
  rm::Svr svr(params);
  svr.fit(d.x, d.y);
  const auto pred = svr.predict(d.x);
  const double model_rmse = repro::common::rmse(pred, d.y);
  const double mean = repro::common::mean(d.y);
  std::vector<double> mean_pred(d.y.size(), mean);
  const double mean_rmse = repro::common::rmse(mean_pred, d.y);
  EXPECT_LT(model_rmse, mean_rmse * 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SvrKernelSweep,
                         ::testing::Values(rm::KernelType::kLinear, rm::KernelType::kRbf,
                                           rm::KernelType::kPolynomial));

/// The paper's exact hyper-parameters must train stably.
TEST(SvrTest, PaperParametersTrainOnSyntheticData) {
  const auto d = nonlinear_dataset(400, 71);
  rm::SvrParams params;
  params.kernel = rm::KernelFunction::rbf(0.1);
  params.c = 1000.0;
  params.epsilon = 0.1;
  rm::Svr svr(params);
  svr.fit(d.x, d.y);
  EXPECT_TRUE(svr.fitted());
  const auto pred = svr.predict(d.x);
  // gamma = 0.1 is a very smooth kernel for this target; the fit stays
  // within the epsilon tube plus smoothing bias.
  EXPECT_LT(repro::common::rmse(pred, d.y), 0.35);
}
