// The observability layer in isolation: sharded counters summing exactly
// under thread contention, log-bucket histogram quantiles against known
// sample sets, registry snapshots and Prometheus exposition, the runtime
// enable switch, and per-request traces (stamp/append/snapshot and the
// failure-report table). The serving-path integration — traced requests
// over the wire, the metrics request kind — lives in serve_test.cpp and
// fleet_test.cpp; the overhead contract in bench/perf_stack.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ro = repro::obs;

namespace {

/// Restores the global runtime switch no matter how the test exits.
struct EnabledGuard {
  ~EnabledGuard() { ro::set_enabled(true); }
};

double value_of(const std::vector<std::pair<std::string, double>>& values,
                const std::string& name) {
  for (const auto& [n, v] : values) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "metric " << name << " missing from snapshot";
  return -1.0;
}

}  // namespace

// REPRO_OBS=OFF compiles the hot paths to no-ops; the positive-count tests
// are meaningless there (and the build is exercised by the obs-overhead
// bench leg, not by this suite).
#if !defined(REPRO_OBS_DISABLED)

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  ro::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(CounterTest, DeltaIncrements) {
  ro::Counter counter;
  counter.inc(5);
  counter.inc();
  counter.inc(0);
  EXPECT_EQ(counter.value(), 6u);
}

TEST(GaugeTest, StoresLastValue) {
  ro::Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-2.0);
  EXPECT_EQ(gauge.value(), -2.0);
}

TEST(HistogramTest, QuantilesOnKnownSamples) {
  // 90 samples at ~3 µs (bucket [2,4)), 9 at ~100 µs ([64,128)), 1 at
  // ~5000 µs ([4096,8192)). Quantiles report the holding bucket's upper
  // edge, clamped to the observed max — the documented <=2x bound.
  ro::Histogram h;
  for (int i = 0; i < 90; ++i) h.observe_us(3.0);
  for (int i = 0; i < 9; ++i) h.observe_us(100.0);
  h.observe_us(5000.0);

  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.sum_us, 90 * 3.0 + 9 * 100.0 + 5000.0, 1.0);
  EXPECT_DOUBLE_EQ(snap.max_us, 5000.0);
  EXPECT_DOUBLE_EQ(snap.quantile_us(0.50), 4.0);     // inside the 3 µs mass
  EXPECT_DOUBLE_EQ(snap.quantile_us(0.95), 128.0);   // the 100 µs bucket
  EXPECT_DOUBLE_EQ(snap.quantile_us(0.99), 128.0);
  EXPECT_DOUBLE_EQ(snap.quantile_us(1.0), 5000.0);   // clamped to max
}

TEST(HistogramTest, SubMicrosecondAndNegativeSamplesLandInBucketZero) {
  ro::Histogram h;
  h.observe_us(0.25);
  h.observe_us(-7.0);  // clamped, never UB
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 2u);
  // Bucket 0's upper edge bounds both; max is the clamped true max.
  EXPECT_LE(snap.quantile_us(1.0), ro::Histogram::bucket_upper_us(0));
}

TEST(HistogramTest, ConcurrentObservationsKeepCountAndMaxCoherent) {
  ro::Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe_us(static_cast<double>(1 + ((t * kPerThread + i) % 1000)));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_DOUBLE_EQ(snap.max_us, 1000.0);  // samples span 1..1000
}

TEST(RegistryTest, LookupIsIdempotentAndPointersStayValid) {
  ro::Registry registry;
  ro::Counter* a = registry.counter("x_total");
  ro::Counter* b = registry.counter("x_total");
  EXPECT_EQ(a, b);
  // Registering more instruments must not invalidate handed-out pointers.
  for (int i = 0; i < 100; ++i) {
    registry.counter("c" + std::to_string(i));
  }
  a->inc(3);
  EXPECT_EQ(registry.counter("x_total")->value(), 3u);
  EXPECT_NE(static_cast<void*>(registry.gauge("x_total")),
            static_cast<void*>(a));  // per-kind namespaces
}

TEST(RegistryTest, SnapshotExpandsHistogramsAndSortsNames) {
  ro::Registry registry;
  registry.counter("b_total")->inc(2);
  registry.gauge("a_gauge")->set(1.5);
  registry.gauge_fn("z_depth", [] { return 7.0; });
  ro::Histogram* h = registry.histogram("lat_us");
  h->observe_us(10.0);
  h->observe_us(20.0);

  const auto values = registry.snapshot_values();
  EXPECT_TRUE(std::is_sorted(
      values.begin(), values.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
  EXPECT_EQ(value_of(values, "b_total"), 2.0);
  EXPECT_EQ(value_of(values, "a_gauge"), 1.5);
  EXPECT_EQ(value_of(values, "z_depth"), 7.0);  // callback ran at snapshot
  EXPECT_EQ(value_of(values, "lat_us_count"), 2.0);
  EXPECT_NEAR(value_of(values, "lat_us_sum_us"), 30.0, 0.01);
  EXPECT_GT(value_of(values, "lat_us_p50_us"), 0.0);
  EXPECT_GT(value_of(values, "lat_us_p95_us"), 0.0);
  EXPECT_GT(value_of(values, "lat_us_p99_us"), 0.0);
  EXPECT_DOUBLE_EQ(value_of(values, "lat_us_max_us"), 20.0);
}

TEST(RegistryTest, PrometheusTextCarriesFlatLinesAndBucketSeries) {
  ro::Registry registry;
  registry.counter("req_total")->inc(4);
  registry.histogram("lat_us")->observe_us(3.0);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("req_total 4\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us_count 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 1\n"), std::string::npos) << text;
}

TEST(RegistryTest, SnapshotRunsWhileWritersRun) {
  ro::Registry registry;
  ro::Counter* c = registry.counter("hot_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c->inc();
  });
  // On a single-CPU box the snapshot loop below can finish before the
  // writer thread is ever scheduled — yield until it has visibly run so the
  // snapshots genuinely race live increments.
  while (c->value() == 0) std::this_thread::yield();
  for (int i = 0; i < 50; ++i) {
    const auto values = registry.snapshot_values();
    EXPECT_EQ(values.size(), 1u);
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(c->value(), 0u);
}

TEST(EnabledSwitchTest, DisabledEventsAreDropped) {
  EnabledGuard guard;
  ro::Counter counter;
  ro::Histogram h;
  ro::set_enabled(false);
  EXPECT_FALSE(ro::enabled());
  counter.inc(100);
  h.observe_us(50.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  ro::set_enabled(true);
  counter.inc();
  EXPECT_EQ(counter.value(), 1u);
}

#endif  // !REPRO_OBS_DISABLED

TEST(RegistryTest, GlobalIsOneInstance) {
  EXPECT_EQ(&ro::Registry::global(), &ro::Registry::global());
}

// Traces are orthogonal to the metrics switch: a request that asked to be
// traced is timed regardless (tracing is already opt-in per request).
TEST(TraceTest, StampAppendSnapshot) {
  ro::RequestTrace trace(42);
  EXPECT_EQ(trace.id(), 42u);
  trace.stamp("parse");
  trace.stamp("admission");
  trace.append({{"worker.execute", 12.5}, {"worker.reply", 13.0}});
  trace.stamp("reply");

  const ro::Trace snap = trace.snapshot();
  EXPECT_EQ(snap.id, 42u);
  ASSERT_EQ(snap.stages.size(), 5u);
  EXPECT_EQ(snap.stages[0].stage, "parse");
  EXPECT_EQ(snap.stages[1].stage, "admission");
  EXPECT_EQ(snap.stages[2].stage, "worker.execute");
  EXPECT_DOUBLE_EQ(snap.stages[2].us, 12.5);
  EXPECT_EQ(snap.stages[3].stage, "worker.reply");
  EXPECT_EQ(snap.stages[4].stage, "reply");
  // Local stamps are monotone against this hop's own t0.
  EXPECT_GE(snap.stages[1].us, snap.stages[0].us);
  EXPECT_GE(snap.stages[4].us, snap.stages[1].us);
}

TEST(TraceTest, NullPointerStampIsANoOp) {
  ro::RequestTracePtr null_trace;
  ro::stamp(null_trace, "parse");  // must not crash
  auto trace = std::make_shared<ro::RequestTrace>(7);
  ro::stamp(trace, "parse");
  EXPECT_EQ(trace->snapshot().stages.size(), 1u);
}

TEST(TraceTest, FormatTableListsEveryStage) {
  ro::Trace trace;
  trace.id = 0xabcd;
  trace.stages = {{"parse", 1.25}, {"balancer.dispatch", 330.0}};
  const std::string table = ro::format_trace_table(trace);
  EXPECT_NE(table.find("parse"), std::string::npos) << table;
  EXPECT_NE(table.find("balancer.dispatch"), std::string::npos) << table;
  EXPECT_NE(table.find("000000000000abcd"), std::string::npos) << table;
}

TEST(TraceTest, ConcurrentStampsNeverLoseStages) {
  auto trace = std::make_shared<ro::RequestTrace>(1);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([trace] {
      for (int i = 0; i < kPerThread; ++i) trace->stamp("s");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(trace->snapshot().stages.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}
