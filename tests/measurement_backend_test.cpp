// Tests for the measurement abstraction: the simulator-backed
// implementation, CSV trace record/replay, the memoizing decorator, and the
// guarantee that a recorded trace trains the exact same model as the live
// simulator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "core/measurement.hpp"
#include "core/model.hpp"
#include "gpusim/simulator.hpp"

namespace rco = repro::core;
namespace rg = repro::gpusim;
namespace rb = repro::benchgen;

namespace {

const rg::GpuSimulator& sim() {
  static const rg::GpuSimulator s(rg::DeviceModel::titan_x());
  return s;
}

std::span<const rb::MicroBenchmark> small_suite() {
  static const auto full = rb::generate_training_suite().value();
  static const std::vector<rb::MicroBenchmark> subset = [] {
    std::vector<rb::MicroBenchmark> out;
    for (std::size_t i = 0; i < full.size(); i += 9) out.push_back(full[i]);
    return out;
  }();
  return subset;
}

std::vector<rg::KernelProfile> suite_profiles() {
  std::vector<rg::KernelProfile> out;
  for (const auto& mb : small_suite()) out.push_back(mb.profile);
  return out;
}

}  // namespace

// --- SimulatorBackend -------------------------------------------------------

TEST(SimulatorBackendTest, MatchesDirectCharacterization) {
  const rco::SimulatorBackend backend(sim());
  const auto configs = sim().freq().sample_configs(12);
  const auto& profile = small_suite()[0].profile;

  const auto points = backend.measure(profile, configs);
  ASSERT_TRUE(points.ok());
  const auto direct = sim().characterize(profile, configs);
  ASSERT_EQ(points.value().size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(points.value()[i].config, direct[i].config);
    EXPECT_DOUBLE_EQ(points.value()[i].speedup, direct[i].speedup);
    EXPECT_DOUBLE_EQ(points.value()[i].norm_energy, direct[i].norm_energy);
  }
}

TEST(SimulatorBackendTest, OwningConstructorBuildsItsOwnSimulator) {
  const rco::SimulatorBackend backend(rg::DeviceModel::tesla_p100());
  EXPECT_EQ(backend.domain().device_name(), rg::FrequencyDomain::tesla_p100().device_name());
  EXPECT_NE(backend.name().find("P100"), std::string::npos);
}

// --- CsvReplayBackend -------------------------------------------------------

TEST(CsvReplayBackendTest, RecordedTraceReplaysExactly) {
  const rco::SimulatorBackend live(sim());
  const auto configs = sim().freq().sample_configs(10);
  const auto profiles = suite_profiles();

  const auto doc = rco::CsvReplayBackend::record(live, profiles, configs);
  ASSERT_TRUE(doc.ok());
  auto replay = rco::CsvReplayBackend::from_document(doc.value(), sim().freq());
  ASSERT_TRUE(replay.ok()) << replay.error().message;
  EXPECT_EQ(replay.value().num_points(), profiles.size() * configs.size());

  for (const auto& profile : profiles) {
    const auto live_points = live.measure(profile, configs);
    const auto replayed = replay.value().measure(profile, configs);
    ASSERT_TRUE(live_points.ok());
    ASSERT_TRUE(replayed.ok());
    ASSERT_EQ(replayed.value().size(), live_points.value().size());
    for (std::size_t i = 0; i < replayed.value().size(); ++i) {
      EXPECT_EQ(replayed.value()[i].config, live_points.value()[i].config);
      EXPECT_DOUBLE_EQ(replayed.value()[i].speedup, live_points.value()[i].speedup);
      EXPECT_DOUBLE_EQ(replayed.value()[i].norm_energy,
                       live_points.value()[i].norm_energy);
    }
  }
}

TEST(CsvReplayBackendTest, UnrecordedPointIsAnError) {
  const rco::SimulatorBackend live(sim());
  const auto configs = sim().freq().sample_configs(4);
  const auto profiles = suite_profiles();
  const auto doc = rco::CsvReplayBackend::record(live, {&profiles[0], 1}, configs);
  ASSERT_TRUE(doc.ok());
  const auto replay = rco::CsvReplayBackend::from_document(doc.value(), sim().freq());
  ASSERT_TRUE(replay.ok());

  // Unrecorded kernel.
  const auto missing_kernel = replay.value().measure(profiles[1], configs);
  EXPECT_FALSE(missing_kernel.ok());
  // Unrecorded configuration of a recorded kernel.
  const rg::FrequencyConfig bogus{1, 1};
  const auto missing_config = replay.value().measure(profiles[0], {&bogus, 1});
  ASSERT_FALSE(missing_config.ok());
  EXPECT_EQ(missing_config.error().code, repro::common::ErrorCode::kNotFound);
}

TEST(CsvReplayBackendTest, RejectsDocumentsWithMissingColumns) {
  const repro::common::CsvDocument doc({"kernel", "core_mhz"});
  EXPECT_FALSE(rco::CsvReplayBackend::from_document(doc, sim().freq()).ok());
}

// --- CachingBackend ---------------------------------------------------------

TEST(CachingBackendTest, ServesRepeatsFromCacheWithIdenticalValues) {
  const rco::CachingBackend cached(
      std::make_unique<rco::SimulatorBackend>(rg::DeviceModel::titan_x()));
  const auto configs = sim().freq().sample_configs(8);
  const auto& profile = small_suite()[0].profile;

  const auto first = cached.measure(profile, configs);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cached.misses(), configs.size());
  EXPECT_EQ(cached.hits(), 0u);

  const auto second = cached.measure(profile, configs);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cached.hits(), configs.size());
  EXPECT_EQ(cached.misses(), configs.size());
  EXPECT_EQ(cached.cached_points(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.value()[i].speedup, first.value()[i].speedup);
    EXPECT_DOUBLE_EQ(second.value()[i].norm_energy, first.value()[i].norm_energy);
  }
}

TEST(CachingBackendTest, PartialOverlapOnlyMeasuresTheMisses) {
  const rco::SimulatorBackend live(sim());
  const rco::CachingBackend cached(live);
  const auto configs = sim().freq().sample_configs(8);
  const auto& profile = small_suite()[1].profile;

  const std::span<const rg::FrequencyConfig> half(configs.data(), 4);
  ASSERT_TRUE(cached.measure(profile, half).ok());
  ASSERT_TRUE(cached.measure(profile, configs).ok());
  EXPECT_EQ(cached.misses(), configs.size());  // 4 + 4, never re-measured
  EXPECT_EQ(cached.hits(), 4u);
}

// --- training equivalence ---------------------------------------------------

TEST(MeasurementBackendTest, CsvReplayTrainsTheSameModelAsTheSimulator) {
  rco::TrainingOptions options;
  options.num_configs = 40;
  // Cheap regressors keep the double-training fast; equivalence holds for
  // any family because the assembled training matrices are identical.
  options.models.speedup_regressor = "ols";
  options.models.energy_regressor = "ridge";

  const rco::SimulatorBackend live(sim());
  const auto trace = rco::CsvReplayBackend::record(
      live, suite_profiles(), sim().freq().sample_configs(options.num_configs));
  ASSERT_TRUE(trace.ok());
  auto replay = rco::CsvReplayBackend::from_document(trace.value(), sim().freq());
  ASSERT_TRUE(replay.ok());

  const auto from_live = rco::FrequencyModel::train(live, small_suite(), options);
  const auto from_trace = rco::FrequencyModel::train(replay.value(), small_suite(), options);
  ASSERT_TRUE(from_live.ok());
  ASSERT_TRUE(from_trace.ok());
  EXPECT_EQ(from_trace.value().training_samples(), from_live.value().training_samples());

  const auto& mb = small_suite()[0];
  for (const auto& config : from_live.value().training_configs()) {
    EXPECT_DOUBLE_EQ(from_trace.value().predict_speedup(mb.features, config),
                     from_live.value().predict_speedup(mb.features, config));
    EXPECT_DOUBLE_EQ(from_trace.value().predict_energy(mb.features, config),
                     from_live.value().predict_energy(mb.features, config));
  }
}
