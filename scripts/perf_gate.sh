#!/usr/bin/env sh
# Performance regression gate: re-run `perf_stack --smoke` and compare the
# named cases' parallel_ms against the committed baseline
# (BENCH_perf_stack.json at the repo root). A case more than 25% slower
# than its baseline fails the gate; bit_identical failures fail it too
# (perf_stack itself exits non-zero on those).
#
# Usage:
#
#   scripts/perf_gate.sh BUILD_DIR [BASELINE_JSON]
#
# Smoke timings are single-rep and sub-millisecond, so the 1.25x ratio is
# cushioned by a 0.25 ms absolute slack — the gate is meant to catch real
# regressions (an accidental O(n^2), a dropped parallel path), not CI
# scheduling jitter.
set -eu

build_dir=${1:?usage: perf_gate.sh BUILD_DIR [BASELINE_JSON]}
build_dir=$(CDPATH= cd -- "$build_dir" && pwd)
script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
baseline=${2:-"$script_dir/../BENCH_perf_stack.json"}

[ -f "$baseline" ] || {
  echo "perf_gate: baseline $baseline not found" >&2
  exit 1
}

work_dir=$(mktemp -d)
trap 'rm -rf "$work_dir"' EXIT INT TERM
current="$work_dir/perf_stack.json"

echo "perf_gate: running perf_stack --alloc-report"
"$build_dir/perf_stack" --alloc-report || {
  echo "perf_gate: serve hot path allocates at steady state" >&2
  exit 1
}

echo "perf_gate: running perf_stack --smoke"
"$build_dir/perf_stack" --smoke --out "$current" || {
  echo "perf_gate: perf_stack failed (bit-identity violation or crash)" >&2
  exit 1
}

# One case object per line in the JSON — extract "<name> <parallel_ms>".
extract() { # file
  sed -n 's/.*"name": "\([a-z_]*\)".*"parallel_ms": \([0-9.]*\).*/\1 \2/p' "$1"
}
extract "$baseline" >"$work_dir/base.txt"
extract "$current" >"$work_dir/cur.txt"

# The gated cases: the stack's headline hot paths. Sub-0.1 ms cases are
# covered by the absolute slack more than the ratio.
cases="svr_train svr_batch_predict pareto_front predict_plus_pareto matrix_multiply simd_kernel_matrix protocol_request_codec protocol_response_codec protocol_parse_arena serving_hotpath"

fail=0
for name in $cases; do
  base_ms=$(awk -v n="$name" '$1 == n { print $2; exit }' "$work_dir/base.txt")
  cur_ms=$(awk -v n="$name" '$1 == n { print $2; exit }' "$work_dir/cur.txt")
  if [ -z "$base_ms" ] || [ -z "$cur_ms" ]; then
    echo "perf_gate: case $name missing (baseline='$base_ms' current='$cur_ms')" >&2
    fail=1
    continue
  fi
  verdict=$(awk -v b="$base_ms" -v c="$cur_ms" \
    'BEGIN { print (c > b * 1.25 + 0.25) ? "REGRESSED" : "ok" }')
  printf 'perf_gate: %-20s baseline %8.3f ms   current %8.3f ms   %s\n' \
    "$name" "$base_ms" "$cur_ms" "$verdict"
  [ "$verdict" = "ok" ] || fail=1
done

# The observability overhead contract: the serving row with mode
# "obs-overhead" reports instrumented-vs-disabled throughput cost in
# percent (min over alternating pairs, so machine noise is already
# filtered). Gated against an absolute bound, not the baseline — the
# contract is "metrics cost <= 3% of serving throughput", full stop.
obs_pct=$(sed -n 's/.*"mode": "obs-overhead".*"overhead_pct": \([0-9.]*\).*/\1/p' "$current")
if [ -z "$obs_pct" ]; then
  echo "perf_gate: obs-overhead row missing from perf_stack output" >&2
  fail=1
else
  obs_verdict=$(awk -v p="$obs_pct" 'BEGIN { print (p > 3.0) ? "REGRESSED" : "ok" }')
  printf 'perf_gate: %-20s overhead %6.2f %%   (bound 3.00 %%)   %s\n' \
    "obs-overhead" "$obs_pct" "$obs_verdict"
  [ "$obs_verdict" = "ok" ] || fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "perf_gate: FAILED — a gated case regressed more than 25% (+0.25 ms slack) or the obs-overhead bound was exceeded" >&2
  exit 1
fi
echo "perf_gate: OK"
