#!/usr/bin/env sh
# Link/pointer check for the Markdown docs: every relative link target and
# every `src/...`, `tests/...`, `bench/...`, `scripts/...` path mentioned in
# README.md and docs/*.md must exist in the repository, so stale docs fail
# the CI pipeline. Usage: scripts/check_docs.sh  (from anywhere).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

status=0

check() {
  doc=$1
  path=$2
  case $path in
    http://*|https://*|\#*) return 0 ;;
  esac
  # Strip a trailing #anchor.
  path=${path%%#*}
  [ -z "$path" ] && return 0
  # Resolve relative to the doc's directory first, then the repo root, and
  # accept executable-target mentions (`bench/perf_stack`) whose source is
  # the same path plus .cpp.
  docdir=$(dirname -- "$doc")
  if [ ! -e "$docdir/$path" ] && [ ! -e "$path" ] && [ ! -e "$path.cpp" ]; then
    echo "BROKEN: $doc -> $path" >&2
    status=1
  fi
}

for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  # 1) Markdown link targets: [text](target)
  for target in $(grep -o ']([^)]*)' "$doc" | sed 's/^](//; s/)$//'); do
    check "$doc" "$target"
  done
  # 2) Backticked repo paths: `src/...`, `tests/...`, `bench/...`, ...
  for target in $(grep -o '`[A-Za-z0-9_./-]*`' "$doc" |
                  sed 's/`//g' |
                  grep -E '^(src|tests|bench|docs|examples|scripts)/[A-Za-z0-9_./-]+$' |
                  grep -v '\.\.\.' | sort -u); do
    check "$doc" "$target"
  done
done

if [ "$status" -eq 0 ]; then
  echo "check_docs: all documentation pointers resolve"
fi
exit "$status"
