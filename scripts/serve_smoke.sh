#!/usr/bin/env sh
# Socket round-trip smoke of the serving stack: start repro_serve on a Unix
# socket (small training suite so startup is seconds), then exercise the
# wire end to end — a predict_source request (OpenCL source featurized on
# the worker shards), a warm repeat, and a pipelined burst (several
# predict_source requests written before any response is read, answered in
# request order) — and finally shut the server down gracefully and require
# a clean exit. Usage:
#
#   scripts/serve_smoke.sh BUILD_DIR
#
# Exits non-zero on any failure; used by CI after the build (including the
# ASan+UBSan leg).
set -eu

build_dir=${1:?usage: serve_smoke.sh BUILD_DIR}
build_dir=$(CDPATH= cd -- "$build_dir" && pwd)

work_dir=$(mktemp -d)
sock="$work_dir/repro_serve.sock"
log="$work_dir/server.log"

cleanup() {
  if [ -n "${server_pid:-}" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$work_dir"
}
trap cleanup EXIT INT TERM

"$build_dir/repro_serve" --unix "$sock" --suite-stride 8 --num-configs 8 \
  --cache-dir "$work_dir/model-cache" --shards 2 >"$log" 2>&1 &
server_pid=$!

# Wait for READY (training takes a few seconds on a cold cache).
ready=0
i=0
while [ "$i" -lt 240 ]; do
  if grep -q '^READY ' "$log" 2>/dev/null; then
    ready=1
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "serve_smoke: server exited before READY" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.5
  i=$((i + 1))
done
if [ "$ready" -ne 1 ]; then
  echo "serve_smoke: server did not become ready in time" >&2
  cat "$log" >&2
  exit 1
fi

# predict_source end to end: the client ships raw OpenCL-C, the server
# featurizes it on a worker shard and answers with the Pareto table.
client_out=$("$build_dir/repro_serve_client" --unix "$sock")
echo "$client_out"
case $client_out in
  *"Pareto-optimal configurations"*) ;;
  *)
    echo "serve_smoke: client output missing the Pareto table" >&2
    exit 1
    ;;
esac

# A second client exercises the warm path (and the connection accounting).
"$build_dir/repro_serve_client" --unix "$sock" >/dev/null

# Pipelined predict_source: 6 requests written back-to-back on one
# connection; the server must answer all of them, in request order.
pipeline_out=$("$build_dir/repro_serve_client" --unix "$sock" --pipeline 6)
echo "$pipeline_out"
case $pipeline_out in
  *"6/6 responses OK"*) ;;
  *)
    echo "serve_smoke: pipelined predict_source burst failed" >&2
    exit 1
    ;;
esac

kill -TERM "$server_pid"
server_status=0
wait "$server_pid" || server_status=$?
if [ "$server_status" -ne 0 ]; then
  echo "serve_smoke: server exited with status $server_status" >&2
  cat "$log" >&2
  exit 1
fi
grep -q 'shutting down' "$log" || {
  echo "serve_smoke: no graceful shutdown message" >&2
  cat "$log" >&2
  exit 1
}
echo "serve_smoke: OK"
