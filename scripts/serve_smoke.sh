#!/usr/bin/env sh
# Socket round-trip smoke of the serving stack: start repro_serve on a Unix
# socket (small training suite so startup is seconds), run repro_serve_client
# against it, require a Pareto table back, then shut the server down
# gracefully and require a clean exit. Usage:
#
#   scripts/serve_smoke.sh BUILD_DIR
#
# Exits non-zero on any failure; used by CI after the build.
set -eu

build_dir=${1:?usage: serve_smoke.sh BUILD_DIR}
build_dir=$(CDPATH= cd -- "$build_dir" && pwd)

work_dir=$(mktemp -d)
sock="$work_dir/repro_serve.sock"
log="$work_dir/server.log"

cleanup() {
  if [ -n "${server_pid:-}" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$work_dir"
}
trap cleanup EXIT INT TERM

"$build_dir/repro_serve" --unix "$sock" --suite-stride 8 --num-configs 8 \
  --cache-dir "$work_dir/model-cache" --shards 2 >"$log" 2>&1 &
server_pid=$!

# Wait for READY (training takes a few seconds on a cold cache).
ready=0
i=0
while [ "$i" -lt 240 ]; do
  if grep -q '^READY ' "$log" 2>/dev/null; then
    ready=1
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "serve_smoke: server exited before READY" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.5
  i=$((i + 1))
done
if [ "$ready" -ne 1 ]; then
  echo "serve_smoke: server did not become ready in time" >&2
  cat "$log" >&2
  exit 1
fi

client_out=$("$build_dir/repro_serve_client" --unix "$sock")
echo "$client_out"
case $client_out in
  *"Pareto-optimal configurations"*) ;;
  *)
    echo "serve_smoke: client output missing the Pareto table" >&2
    exit 1
    ;;
esac

# A second client exercises the warm path (and the connection accounting).
"$build_dir/repro_serve_client" --unix "$sock" >/dev/null

kill -TERM "$server_pid"
server_status=0
wait "$server_pid" || server_status=$?
if [ "$server_status" -ne 0 ]; then
  echo "serve_smoke: server exited with status $server_status" >&2
  cat "$log" >&2
  exit 1
fi
grep -q 'shutting down' "$log" || {
  echo "serve_smoke: no graceful shutdown message" >&2
  cat "$log" >&2
  exit 1
}
echo "serve_smoke: OK"
