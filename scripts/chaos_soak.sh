#!/usr/bin/env sh
# Chaos soak of the serving fleet: real repro_serve workers under
# repro_fleet, with every failure mode the robustness layer claims to
# absorb switched on at once —
#
#   * supervisor chaos mode (--chaos-kill-ms): SIGKILLs a random live
#     worker on a timer; the monitor respawns it,
#   * seeded socket-fault injection in the workers (--worker-faults /
#     REPRO_FAULTS): short reads/writes, EINTR storms, injected latency,
#     and occasional connection drops on every worker socket operation,
#   * overload: a pipelined burst arrives as fast as one connection can
#     carry it, far above a few workers' service rate, with admission
#     shedding armed (--max-queue-delay-us).
#
# The contract under all of that, checked here end to end:
#
#   1. Every request in the burst is answered — a bit-identical prediction
#      (same fnv1a as a direct no-fleet repro_serve) or a retryable error
#      (worker draining, overload shed, expired deadline). Never a hang,
#      never a non-retryable error, never a lost id.
#   2. The burst terminates inside a wall-clock bound (no wedged sockets).
#   3. The model cache survives the kills: zero torn/unparseable model
#      files and zero leftover *.tmp.* files (repro_cache_check).
#
# Usage:
#
#   scripts/chaos_soak.sh BUILD_DIR [--quick]
#
# --quick (the CI leg) shrinks the burst and kill count to keep the job in
# tens of seconds; the full soak is the pre-merge check.
set -eu

build_dir=${1:?usage: chaos_soak.sh BUILD_DIR [--quick]}
build_dir=$(CDPATH= cd -- "$build_dir" && pwd)
quick=0
[ "${2:-}" = "--quick" ] && quick=1

if [ "$quick" -eq 1 ]; then
  burst=128
  kill_ms=400
  burst_timeout=90
else
  burst=256
  kill_ms=250
  burst_timeout=180
fi
workers=3
# Benign faults dominate (they must be invisible); drops are rare but
# present so backend connections actually die mid-request now and then.
faults='7:short_rw=0.05,eintr=0.05,delay_ms=2,delay_p=0.05,drop=0.002'
train_flags="--suite-stride 8 --num-configs 8"

work_dir=$(mktemp -d)
cache_dir="$work_dir/model-cache"

cleanup() {
  for pid in ${pids:-}; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$work_dir"
}
trap cleanup EXIT INT TERM
pids=""

wait_ready() { # log_file
  i=0
  while [ "$i" -lt 240 ]; do
    if grep -q '^READY ' "$1" 2>/dev/null; then
      return 0
    fi
    sleep 0.5
    i=$((i + 1))
  done
  echo "chaos_soak: no READY in $1" >&2
  cat "$1" >&2
  return 1
}

# On a burst failure, send one traced probe request through the fleet and
# print its trace id + per-stage timing table — which hop the struggling
# fleet spends its time in, attached to the failure report.
trace_probe() { # unix_sock
  echo "chaos_soak: per-stage trace of a probe request through $1:" >&2
  timeout 30 "$build_dir/repro_serve_client" --unix "$1" --trace --dump \
    >/dev/null 2>"$work_dir/trace-probe.txt" || true
  cat "$work_dir/trace-probe.txt" >&2
}

# --- reference hash: a direct repro_serve, no fleet, no faults ----------------
direct_sock="$work_dir/direct.sock"
direct_log="$work_dir/direct.log"
# shellcheck disable=SC2086
"$build_dir/repro_serve" --unix "$direct_sock" $train_flags \
  --cache-dir "$cache_dir" >"$direct_log" 2>&1 &
direct_pid=$!
pids="$pids $direct_pid"
wait_ready "$direct_log"
"$build_dir/repro_serve_client" --unix "$direct_sock" --pipeline 1 --dump \
  >"$work_dir/reference.out"
kill -TERM "$direct_pid"
wait "$direct_pid" || {
  echo "chaos_soak: direct server exited uncleanly" >&2
  cat "$direct_log" >&2
  exit 1
}
pids=$(echo "$pids" | sed "s/ $direct_pid//")

ref_hash=$(awk '$1 == "req" && $3 == "ok" { print $4; exit }' "$work_dir/reference.out")
if [ -z "$ref_hash" ]; then
  echo "chaos_soak: could not extract the reference hash" >&2
  cat "$work_dir/reference.out" >&2
  exit 1
fi
echo "chaos_soak: reference hash $ref_hash"

# --- the fleet, with every chaos knob on --------------------------------------
fleet_dir="$work_dir/fleet"
mkdir -p "$fleet_dir"
fleet_sock="$work_dir/fleet.sock"
fleet_log="$work_dir/fleet.log"
# shellcheck disable=SC2086
"$build_dir/repro_fleet" --unix "$fleet_sock" --workers "$workers" \
  --dir "$fleet_dir" --cache-dir "$cache_dir" $train_flags \
  --max-queue-delay-us 50000 \
  --chaos-kill-ms "$kill_ms" \
  --worker-faults "$faults" \
  --serve-binary "$build_dir/repro_serve" >"$fleet_log" 2>&1 &
fleet_pid=$!
pids="$pids $fleet_pid"
wait_ready "$fleet_log"

# Resident-set sample of the fleet front process (the balancer, whose
# per-connection splitter/arena/pool path the burst hammers). Compared
# against a second sample after the burst: pooled buffers and arenas mean
# steady state must not grow the heap with request count.
rss_kb() { # pid
  awk '/^VmRSS:/ { print $2; exit }' "/proc/$1/status" 2>/dev/null || echo 0
}
rss_before=$(rss_kb "$fleet_pid")

# --- the burst: pipelined, overloading, deadline-stamped ----------------------
burst_status=0
timeout "$burst_timeout" \
  "$build_dir/repro_serve_client" --unix "$fleet_sock" \
  --pipeline "$burst" --dump --deadline-ms 30000 \
  >"$work_dir/burst.out" 2>&1 || burst_status=$?
tail -n 3 "$work_dir/burst.out"
if [ "$burst_status" -eq 124 ]; then
  echo "chaos_soak: burst HUNG past ${burst_timeout}s" >&2
  cat "$fleet_log" >&2
  trace_probe "$fleet_sock"
  exit 1
fi
if [ "$burst_status" -ne 0 ]; then
  echo "chaos_soak: burst saw non-retryable failures (exit $burst_status)" >&2
  grep ' error ' "$work_dir/burst.out" >&2 || true
  cat "$fleet_log" >&2
  trace_probe "$fleet_sock"
  exit 1
fi

# Every id answered exactly once.
answered=$(grep -c '^req ' "$work_dir/burst.out" || true)
if [ "$answered" -ne "$burst" ]; then
  echo "chaos_soak: $answered of $burst requests answered — ids were lost" >&2
  trace_probe "$fleet_sock"
  exit 1
fi

# Every ok reply bit-identical to the no-fleet reference.
bad_hashes=$(awk -v ref="$ref_hash" \
  '$1 == "req" && $3 == "ok" && $4 != ref { n++ } END { print n + 0 }' \
  "$work_dir/burst.out")
ok_count=$(grep -c ' ok ' "$work_dir/burst.out" || true)
retry_count=$(grep -c ' retryable ' "$work_dir/burst.out" || true)
if [ "$bad_hashes" -ne 0 ]; then
  echo "chaos_soak: $bad_hashes replies differ from the reference hash $ref_hash" >&2
  trace_probe "$fleet_sock"
  exit 1
fi
if [ "$ok_count" -eq 0 ]; then
  echo "chaos_soak: every request was refused — the fleet served nothing" >&2
  cat "$fleet_log" >&2
  trace_probe "$fleet_sock"
  exit 1
fi
echo "chaos_soak: $ok_count ok (all bit-identical), $retry_count retryable, 0 lost"

# Steady RSS across the burst: the front process must not grow its resident
# set with request count (pooled splitter buffers, per-connection arenas).
# The bound is deliberately loose — 64 MB covers late-faulting pages and
# allocator slack, while a per-request leak on even this burst would blow
# far past it.
rss_after=$(rss_kb "$fleet_pid")
rss_growth_kb=$((rss_after - rss_before))
echo "chaos_soak: fleet front VmRSS ${rss_before} kB -> ${rss_after} kB (+${rss_growth_kb} kB) across the burst"
if [ "$rss_before" -gt 0 ] && [ "$rss_growth_kb" -gt 65536 ]; then
  echo "chaos_soak: fleet front RSS grew ${rss_growth_kb} kB across the burst — per-request memory is leaking past the pools" >&2
  exit 1
fi

# Chaos actually happened: at least one worker was SIGKILLed during the run.
sleep 1
if ! grep -q 'chaos' "$fleet_log"; then
  echo "chaos_soak: no chaos kill was logged — the soak did not soak" >&2
  cat "$fleet_log" >&2
  exit 1
fi

# --- graceful teardown, then the crash-safety audit ---------------------------
kill -TERM "$fleet_pid"
fleet_status=0
wait "$fleet_pid" || fleet_status=$?
if [ "$fleet_status" -ne 0 ]; then
  echo "chaos_soak: repro_fleet exited with $fleet_status" >&2
  cat "$fleet_log" >&2
  exit 1
fi
pids=$(echo "$pids" | sed "s/ $fleet_pid//")

# Every model file parses, checksum intact; no torn tmp files left behind.
"$build_dir/repro_cache_check" "$cache_dir" >"$work_dir/cache.out" || {
  echo "chaos_soak: cache check found corrupt model files" >&2
  cat "$work_dir/cache.out" >&2
  exit 1
}
cat "$work_dir/cache.out"
if grep -q '^tmp ' "$work_dir/cache.out"; then
  echo "chaos_soak: leftover tmp files after the soak" >&2
  exit 1
fi

echo "chaos_soak: OK"
