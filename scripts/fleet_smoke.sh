#!/usr/bin/env sh
# Multi-process integration smoke of the serving fleet: real repro_serve
# worker processes under repro_fleet (broker + supervisor + balancer),
# checked for the two fleet contracts the in-process tests cannot prove:
#
#   1. Bit-identity across worker counts: the balancer endpoint answers a
#      predict_source request with byte-identical --dump output at 1, 2,
#      and 4 workers, and identical to a direct repro_serve with no fleet
#      in between. (The shared model cache means training happens once, in
#      the broker, on the first run.)
#   2. Worker loss is invisible: kill -9 one worker in the middle of a
#      pipelined 128-request burst; every request must still be answered
#      (the balancer re-dispatches, the supervisor respawns).
#
# Usage:
#
#   scripts/fleet_smoke.sh BUILD_DIR
#
# Exits non-zero on any failure; wired into CI as the fleet-smoke job.
set -eu

build_dir=${1:?usage: fleet_smoke.sh BUILD_DIR}
build_dir=$(CDPATH= cd -- "$build_dir" && pwd)

work_dir=$(mktemp -d)
cache_dir="$work_dir/model-cache"
train_flags="--suite-stride 8 --num-configs 8"

cleanup() {
  for pid in ${pids:-}; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$work_dir"
}
trap cleanup EXIT INT TERM
pids=""

wait_ready() { # log_file
  i=0
  while [ "$i" -lt 240 ]; do
    if grep -q '^READY ' "$1" 2>/dev/null; then
      return 0
    fi
    sleep 0.5
    i=$((i + 1))
  done
  echo "fleet_smoke: no READY in $1" >&2
  cat "$1" >&2
  return 1
}

# On a failure, send one traced probe request through the same endpoint and
# print its trace id + per-stage timing table — where the (failing) fleet
# spends its time, attached to the failure report.
trace_probe() { # unix_sock
  echo "fleet_smoke: per-stage trace of a probe request through $1:" >&2
  "$build_dir/repro_serve_client" --unix "$1" --trace --dump \
    >/dev/null 2>"$work_dir/trace-probe.txt" || true
  cat "$work_dir/trace-probe.txt" >&2
}

# --- reference: a direct repro_serve, no fleet in between --------------------
direct_sock="$work_dir/direct.sock"
direct_log="$work_dir/direct.log"
# shellcheck disable=SC2086
"$build_dir/repro_serve" --unix "$direct_sock" $train_flags \
  --cache-dir "$cache_dir" >"$direct_log" 2>&1 &
direct_pid=$!
pids="$pids $direct_pid"
wait_ready "$direct_log"
"$build_dir/repro_serve_client" --unix "$direct_sock" --dump >"$work_dir/direct.txt"
kill -TERM "$direct_pid"
wait "$direct_pid" || {
  echo "fleet_smoke: direct server exited uncleanly" >&2
  cat "$direct_log" >&2
  exit 1
}
pids=$(echo "$pids" | sed "s/ $direct_pid//")

# --- bit-identity at 1, 2, and 4 workers -------------------------------------
for workers in 1 2 4; do
  fleet_dir="$work_dir/fleet-$workers"
  mkdir -p "$fleet_dir"
  fleet_sock="$work_dir/fleet-$workers.sock"
  fleet_log="$work_dir/fleet-$workers.log"
  # shellcheck disable=SC2086
  "$build_dir/repro_fleet" --unix "$fleet_sock" --workers "$workers" \
    --dir "$fleet_dir" --cache-dir "$cache_dir" $train_flags \
    --serve-binary "$build_dir/repro_serve" >"$fleet_log" 2>&1 &
  fleet_pid=$!
  pids="$pids $fleet_pid"
  wait_ready "$fleet_log"

  "$build_dir/repro_serve_client" --unix "$fleet_sock" --dump \
    >"$work_dir/fleet-$workers.txt"
  if ! cmp -s "$work_dir/direct.txt" "$work_dir/fleet-$workers.txt"; then
    echo "fleet_smoke: fleet with $workers worker(s) is NOT bit-identical to direct serving" >&2
    diff "$work_dir/direct.txt" "$work_dir/fleet-$workers.txt" >&2 || true
    trace_probe "$fleet_sock"
    exit 1
  fi
  echo "fleet_smoke: $workers worker(s) bit-identical to direct serving"

  if [ "$workers" -eq 2 ]; then
    # --- kill one worker mid-burst; zero requests may be lost ----------------
    "$build_dir/repro_serve_client" --unix "$fleet_sock" --pipeline 128 \
      >"$work_dir/burst.out" 2>&1 &
    burst_pid=$!
    sleep 0.2
    victim=$(sed -n 's/^WORKER 0 pid \([0-9]*\) .*/\1/p' "$fleet_log" | head -n 1)
    if [ -n "$victim" ] && kill -0 "$victim" 2>/dev/null; then
      kill -9 "$victim"
      echo "fleet_smoke: killed worker 0 (pid $victim) mid-burst"
    else
      echo "fleet_smoke: worker 0 pid not found/already gone; burst still must complete" >&2
    fi
    burst_status=0
    wait "$burst_pid" || burst_status=$?
    cat "$work_dir/burst.out"
    if [ "$burst_status" -ne 0 ] || ! grep -q '128/128 responses OK' "$work_dir/burst.out"; then
      echo "fleet_smoke: pipelined burst lost requests across the worker kill" >&2
      cat "$fleet_log" >&2
      trace_probe "$fleet_sock"
      exit 1
    fi
    # A fresh request after the kill: the respawned (or surviving) fleet
    # must still answer bit-identically.
    "$build_dir/repro_serve_client" --unix "$fleet_sock" --dump \
      >"$work_dir/after-kill.txt"
    cmp -s "$work_dir/direct.txt" "$work_dir/after-kill.txt" || {
      echo "fleet_smoke: post-kill reply differs from the reference" >&2
      trace_probe "$fleet_sock"
      exit 1
    }
  fi

  kill -TERM "$fleet_pid"
  fleet_status=0
  wait "$fleet_pid" || fleet_status=$?
  if [ "$fleet_status" -ne 0 ]; then
    echo "fleet_smoke: repro_fleet ($workers workers) exited with $fleet_status" >&2
    cat "$fleet_log" >&2
    exit 1
  fi
  grep -q 'shutting down' "$fleet_log" || {
    echo "fleet_smoke: no graceful shutdown message" >&2
    cat "$fleet_log" >&2
    exit 1
  }
  pids=$(echo "$pids" | sed "s/ $fleet_pid//")
done

echo "fleet_smoke: OK"
