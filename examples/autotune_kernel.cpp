// Autotuner: load an OpenCL kernel from a file (or use the built-in demo),
// predict its Pareto front, and answer the three questions a deployment
// engineer actually asks:
//   * which configuration maximizes performance,
//   * which minimizes energy-per-task,
//   * which is the best compromise under a performance floor
//     (default: at least 95% of the default configuration's speed).
//
// Usage: autotune_kernel [kernel.cl] [kernel_name] [--min-speedup 0.95]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "clfront/features.hpp"
#include "core/predictor.hpp"
#include "pareto/knee.hpp"

using namespace repro;

namespace {

const char* kDemoKernel = R"CL(
// Demo: horizontal blur with a small compile-time stencil.
kernel void blur5(global float* src, global float* dst, int width, int height) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0f;
  for (int dx = -2; dx <= 2; dx++) {
    int ix = clamp(x + dx, 0, width - 1);
    acc += src[y * width + ix];
  }
  dst[y * width + x] = acc * 0.2f;
}
)CL";

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemoKernel;
  std::string kernel_name;
  double min_speedup = 0.95;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (source == kDemoKernel) {
      source = read_file(argv[i]);
      if (source.empty()) {
        std::fprintf(stderr, "cannot read %s\n", argv[i]);
        return 1;
      }
    } else {
      kernel_name = argv[i];
    }
  }

  auto predictor = core::Predictor::builder().cache("gpufreq_model_cache.txt").build();
  if (!predictor.ok()) {
    std::fprintf(stderr, "%s\n", predictor.error().to_string().c_str());
    return 1;
  }

  // The predictor's FeaturePipeline does source→features; printing them
  // first keeps the "does it compile" failure mode separate from prediction.
  auto features = predictor.value().pipeline().featurize(source, kernel_name);
  if (!features.ok()) {
    std::fprintf(stderr, "kernel does not compile: %s\n",
                 features.error().to_string().c_str());
    return 1;
  }
  std::printf("autotuning kernel '%s'\n", features.value().kernel_name.c_str());
  std::printf("static features: %s\n\n", features.value().to_string().c_str());

  // (predict_source(source, kernel_name) would do featurize + predict in
  // one call; the features were already extracted for the printout above.)
  const auto pareto_result = predictor.value().predict_pareto(features.value());
  if (!pareto_result.ok()) {
    std::fprintf(stderr, "%s\n", pareto_result.error().to_string().c_str());
    return 1;
  }
  const auto& pareto_set = pareto_result.value();
  std::printf("predicted Pareto set (%zu configurations):\n", pareto_set.size());
  for (const auto& p : pareto_set) {
    std::printf("  core %4d / mem %4d -> speedup %.3f, energy %.3f%s\n",
                p.config.core_mhz, p.config.mem_mhz, p.speedup, p.energy,
                p.heuristic ? " (heuristic)" : "");
  }

  // Decision support. The heuristic point has no trustworthy prediction, so
  // constrained picks are made over the modeled points only.
  const core::PredictedPoint* fastest = nullptr;
  const core::PredictedPoint* greenest = nullptr;
  const core::PredictedPoint* constrained = nullptr;
  for (const auto& p : pareto_set) {
    if (p.heuristic) continue;
    if (fastest == nullptr || p.speedup > fastest->speedup) fastest = &p;
    if (greenest == nullptr || p.energy < greenest->energy) greenest = &p;
    if (p.speedup >= min_speedup &&
        (constrained == nullptr || p.energy < constrained->energy)) {
      constrained = &p;
    }
  }
  std::printf("\nrecommendations:\n");
  if (fastest != nullptr) {
    std::printf("  max performance : core %4d / mem %4d (predicted speedup %.3f)\n",
                fastest->config.core_mhz, fastest->config.mem_mhz, fastest->speedup);
  }
  if (greenest != nullptr) {
    std::printf("  min energy      : core %4d / mem %4d (predicted energy %.3f)\n",
                greenest->config.core_mhz, greenest->config.mem_mhz, greenest->energy);
  }
  if (constrained != nullptr) {
    std::printf(
        "  best with speedup >= %.2f: core %4d / mem %4d (energy %.3f, speedup %.3f)\n",
        min_speedup, constrained->config.core_mhz, constrained->config.mem_mhz,
        constrained->energy, constrained->speedup);
  } else {
    std::printf("  no modeled configuration reaches speedup >= %.2f\n", min_speedup);
  }

  // Knee point: the balanced pick with no explicit constraint.
  std::vector<pareto::Point> front;
  for (std::size_t i = 0; i < pareto_set.size(); ++i) {
    if (!pareto_set[i].heuristic) {
      front.push_back({pareto_set[i].speedup, pareto_set[i].energy,
                       static_cast<std::uint32_t>(i)});
    }
  }
  if (!front.empty()) {
    const auto knee = pareto::knee_by_utopia_distance(front);
    const auto& pick = pareto_set[knee.id];
    std::printf("  balanced (knee)  : core %4d / mem %4d (speedup %.3f, energy %.3f)\n",
                pick.config.core_mhz, pick.config.mem_mhz, pick.speedup, pick.energy);
  }
  std::printf("\napply with NVML: nvmlDeviceSetApplicationsClocks(dev, mem, core)\n");
  return 0;
}
