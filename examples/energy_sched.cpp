// Energy-aware batch scheduler: given a queue of kernels, pick a per-kernel
// frequency configuration from the *predicted* Pareto set that minimizes
// energy subject to a performance floor, then validate the plan against the
// (simulated) hardware. This is the deployment scenario the paper's intro
// motivates: per-application DVFS instead of one static default.
//
// Usage: energy_sched [--min-speedup 0.9]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/predictor.hpp"
#include "gpusim/simulator.hpp"
#include "kernels/kernels.hpp"

using namespace repro;

int main(int argc, char** argv) {
  double min_speedup = 0.9;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    }
  }

  // The simulator doubles as the deployment "hardware" the plan is validated
  // against, so the predictor borrows it as its measurement backend.
  const gpusim::GpuSimulator sim(gpusim::DeviceModel::titan_x());
  auto predictor = core::Predictor::builder()
                       .backend(std::make_unique<core::SimulatorBackend>(sim))
                       .cache("gpufreq_model_cache.txt")
                       .build();
  if (!predictor.ok()) {
    std::fprintf(stderr, "%s\n", predictor.error().to_string().c_str());
    return 1;
  }

  std::printf("scheduling %zu kernels with per-kernel DVFS, floor: speedup >= %.2f\n\n",
              kernels::test_suite().size(), min_speedup);
  std::printf("%-16s %-22s %10s %10s | %10s %10s\n", "kernel", "chosen config",
              "pred. s", "pred. e", "actual s", "actual e");

  double total_default_j = 0.0;
  double total_tuned_j = 0.0;
  double total_default_ms = 0.0;
  double total_tuned_ms = 0.0;
  int floor_violations = 0;

  for (const auto& benchmark : kernels::test_suite()) {
    const auto features = kernels::benchmark_features(benchmark);
    if (!features.ok()) continue;

    // Pick: minimum predicted energy among modeled points meeting the floor;
    // fall back to the default configuration when none qualifies.
    const auto pareto_result = predictor.value().predict_pareto(features.value());
    if (!pareto_result.ok()) continue;
    const auto& pareto = pareto_result.value();
    gpusim::FrequencyConfig chosen = sim.freq().default_config();
    double chosen_s = 1.0;
    double chosen_e = 1.0;
    bool found = false;
    for (const auto& p : pareto) {
      if (p.heuristic || p.speedup < min_speedup) continue;
      if (!found || p.energy < chosen_e) {
        chosen = p.config;
        chosen_s = p.speedup;
        chosen_e = p.energy;
        found = true;
      }
    }

    // Validate against the hardware.
    const auto def = sim.run_default(benchmark.profile);
    const auto run = sim.run_at(benchmark.profile, chosen);
    const double actual_s = def.time_ms / run.time_ms;
    const double actual_e = run.energy_j / def.energy_j;
    if (actual_s < min_speedup) ++floor_violations;

    total_default_j += def.energy_j;
    total_tuned_j += run.energy_j;
    total_default_ms += def.time_ms;
    total_tuned_ms += run.time_ms;

    char config_str[64];
    std::snprintf(config_str, sizeof(config_str), "core %4d / mem %4d%s",
                  chosen.core_mhz, chosen.mem_mhz, found ? "" : " (default)");
    std::printf("%-16s %-22s %10.3f %10.3f | %10.3f %10.3f\n", benchmark.name.c_str(),
                config_str, chosen_s, chosen_e, actual_s, actual_e);
  }

  std::printf("\nbatch summary (per-invocation sums):\n");
  std::printf("  default : %8.2f ms, %8.3f J\n", total_default_ms, total_default_j);
  std::printf("  tuned   : %8.2f ms, %8.3f J\n", total_tuned_ms, total_tuned_j);
  std::printf("  energy saved: %.1f%%, time cost: %.1f%%, floor violations: %d/12\n",
              100.0 * (1.0 - total_tuned_j / total_default_j),
              100.0 * (total_tuned_ms / total_default_ms - 1.0), floor_violations);
  return 0;
}
