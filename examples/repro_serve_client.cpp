// repro_serve_client — query a running repro_serve instance.
//
//   repro_serve_client --unix /tmp/repro.sock [--file kernel.cl] [--kernel NAME]
//   repro_serve_client --tcp 7070             [--file kernel.cl] [--kernel NAME]
//                      [--pipeline N]
//
// Sends the kernel source (a built-in SAXPY demo when --file is omitted) as
// a predict_source request — features are extracted on the server's worker
// shards — and prints the predicted Pareto-optimal frequency
// configurations. --pipeline N sends N copies back-to-back on one
// connection before reading any response, exercising the server's
// pipelined decode (responses must come back in request order).
//
// --dump prints the prediction as exact machine-readable rows instead of
// the pretty table: doubles with %.17g round-trip bit-exactly, so two
// --dump outputs are byte-identical iff the predictions are bit-identical.
// The fleet smoke test diffs a direct repro_serve against the balancer at
// several worker counts this way.
//
// --deadline-ms X stamps every request with a relative deadline; the server
// answers "deadline_exceeded" (retryable) instead of predicting late.
//
// --pipeline N --dump switches to the chaos-soak report: one line per
// request — "req I ok <fnv1a-of-dump>" / "req I retryable <msg>" /
// "req I error <msg>" — and exits 0 iff no request hit a NON-retryable
// error. Identical hashes == bit-identical predictions; retryable errors
// (worker draining, overload shed, expired deadline) are expected under
// chaos and do not fail the burst.
//
// Introspection instead of prediction:
//   --stats    pretty table of the server's full counter dump (shed,
//              deadline_exceeded, peak_message_bytes, ...)
//   --metrics  the server's metrics-registry exposition (against a
//              balancer: merged across the fleet)
//
// --trace asks every hop for per-stage timings and prints the stage table
// on stderr (stderr so --dump stdout stays byte-comparable). In pipeline
// mode the table of the last-read response is printed after the burst —
// the smoke/chaos scripts use that to show where a failing fleet spends
// its time.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"

using namespace repro;

namespace {

const char* kDemoKernel = R"CL(
kernel void saxpy_demo(global float* x, global float* y, float a, int n) {
  int gid = get_global_id(0);
  if (gid < n) y[gid] = a * x[gid] + y[gid];
}
)CL";

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --tcp PORT) [--file kernel.cl] [--kernel NAME]\n"
               "          [--pipeline N] [--dump] [--deadline-ms X] [--trace]\n"
               "          [--stats | --metrics]\n",
               argv0);
  return 2;
}

/// Human table of the full counter dump; the interesting overload counters
/// (shed, deadline_exceeded) and the streaming memory bound
/// (peak_message_bytes) get called out even when zero.
void print_stats(const serve::WireStats& s) {
  std::printf("%-22s %14.3f\n", "uptime_s", s.uptime_s);
  const struct {
    const char* name;
    std::uint64_t value;
  } rows[] = {
      {"queue_depth", s.queue_depth},
      {"requests", s.requests},
      {"source_requests", s.source_requests},
      {"batches", s.batches},
      {"connections", s.connections},
      {"protocol_errors", s.protocol_errors},
      {"cache_hits", s.cache_hits},
      {"cache_misses", s.cache_misses},
      {"shed", s.shed},
      {"deadline_exceeded", s.deadline_exceeded},
      {"streamed", s.streamed},
      {"peak_message_bytes", s.peak_message_bytes},
  };
  for (const auto& row : rows) {
    std::printf("%-22s %14llu\n", row.name,
                static_cast<unsigned long long>(row.value));
  }
}

void print_last_trace(serve::SocketClient& client) {
  if (client.last_trace().has_value()) {
    std::fputs(obs::format_trace_table(*client.last_trace()).c_str(), stderr);
  }
}

/// The exact --dump text of one prediction (the bit-identity format).
std::string dump_text(const core::Predictor::KernelPrediction& prediction) {
  std::string out = "kernel " + prediction.kernel + "\n";
  char row[160];
  for (const auto& p : prediction.pareto) {
    std::snprintf(row, sizeof row, "%d %d %.17g %.17g %d\n", p.config.core_mhz,
                  p.config.mem_mhz, p.speedup, p.energy, p.heuristic ? 1 : 0);
    out += row;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int tcp_port = -1;
  std::string file;
  std::string kernel_name;
  std::size_t pipeline = 0;
  bool dump = false;
  bool trace = false;
  bool want_stats = false;
  bool want_metrics = false;
  double deadline_ms = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--unix" && has_value) {
      unix_path = argv[++i];
    } else if (arg == "--tcp" && has_value) {
      tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--file" && has_value) {
      file = argv[++i];
    } else if (arg == "--kernel" && has_value) {
      kernel_name = argv[++i];
    } else if (arg == "--pipeline" && has_value) {
      pipeline = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg == "--deadline-ms" && has_value) {
      deadline_ms = std::strtod(argv[++i], nullptr);
    } else {
      return usage(argv[0]);
    }
  }
  if (unix_path.empty() && tcp_port < 0) return usage(argv[0]);

  std::string source = kDemoKernel;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 1;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    source = oss.str();
  }

  auto client = unix_path.empty() ? serve::SocketClient::connect_tcp(tcp_port)
                                  : serve::SocketClient::connect_unix(unix_path);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.error().to_string().c_str());
    return 1;
  }
  if (deadline_ms > 0.0) client.value().set_deadline_ms(deadline_ms);
  if (trace) client.value().set_trace_enabled(true);

  if (want_stats) {
    auto stats = client.value().stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.error().to_string().c_str());
      return 1;
    }
    print_stats(stats.value());
    return 0;
  }
  if (want_metrics) {
    auto metrics = client.value().metrics();
    if (!metrics.ok()) {
      std::fprintf(stderr, "metrics: %s\n", metrics.error().to_string().c_str());
      return 1;
    }
    std::fputs(metrics.value().text.c_str(), stdout);
    return 0;
  }

  if (pipeline > 0) {
    const std::vector<core::Predictor::SourceRequest> sources(
        pipeline, {source, kernel_name});
    const auto responses = client.value().predict_source_many(sources);
    if (trace) print_last_trace(client.value());
    if (dump) {
      // Chaos-soak report: every request accounted for, retryable errors
      // expected (worker draining, overload shed, expired deadline) — only
      // a non-retryable error or a lost request fails the burst.
      std::size_t ok = 0, retryable = 0, failed = 0;
      for (std::size_t i = 0; i < responses.size(); ++i) {
        const auto& r = responses[i];
        if (r.ok()) {
          ++ok;
          std::printf("req %zu ok %016llx\n", i,
                      static_cast<unsigned long long>(
                          common::fnv1a(dump_text(r.value()))));
        } else if (common::is_retryable(r.error().code)) {
          ++retryable;
          std::printf("req %zu retryable %s\n", i, r.error().to_string().c_str());
        } else {
          ++failed;
          std::printf("req %zu error %s\n", i, r.error().to_string().c_str());
        }
      }
      std::printf("pipelined: %zu ok, %zu retryable, %zu failed of %zu\n", ok,
                  retryable, failed, responses.size());
      return failed == 0 ? 0 : 1;
    }
    std::size_t ok = 0;
    for (const auto& r : responses) {
      if (r.ok()) {
        ++ok;
      } else {
        std::fprintf(stderr, "pipelined predict: %s\n", r.error().to_string().c_str());
      }
    }
    std::printf("pipelined: %zu/%zu responses OK, in request order\n", ok,
                responses.size());
    return ok == responses.size() ? 0 : 1;
  }

  auto prediction = client.value().predict_source(source, kernel_name);
  if (trace) print_last_trace(client.value());
  if (!prediction.ok()) {
    std::fprintf(stderr, "predict: %s\n", prediction.error().to_string().c_str());
    return 1;
  }

  if (dump) {
    std::printf("kernel %s\n", prediction.value().kernel.c_str());
    for (const auto& p : prediction.value().pareto) {
      std::printf("%d %d %.17g %.17g %d\n", p.config.core_mhz, p.config.mem_mhz,
                  p.speedup, p.energy, p.heuristic ? 1 : 0);
    }
    return 0;
  }

  std::printf("kernel %s — predicted Pareto-optimal configurations:\n",
              prediction.value().kernel.c_str());
  std::printf("%-28s %10s %14s\n", "configuration", "speedup", "norm. energy");
  for (const auto& p : prediction.value().pareto) {
    std::printf("core %4d MHz / mem %4d MHz   %8.3f %14.3f%s\n", p.config.core_mhz,
                p.config.mem_mhz, p.speedup, p.energy,
                p.heuristic ? "   (mem-L heuristic)" : "");
  }
  return 0;
}
