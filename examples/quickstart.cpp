// Quickstart: the complete library flow in ~60 lines.
//
//   1. Train the predictor on the 106 synthetic micro-benchmarks (or load a
//      cached model — training takes a few seconds on the simulated GPU).
//   2. Hand it a brand-new OpenCL kernel *as source text*.
//   3. Get back the predicted Pareto-optimal (core, memory) frequency
//      configurations — without ever running the kernel.
#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "clfront/features.hpp"
#include "core/model.hpp"
#include "gpusim/simulator.hpp"

using namespace repro;

// A kernel the model has never seen: SAXPY with a twist of transcendentals.
static const char* kNewKernel = R"CL(
kernel void saxpy_tuned(global float* x, global float* y, float a, int n) {
  int gid = get_global_id(0);
  float xv = x[gid];
  float yv = y[gid];
  float scaled = a * xv + yv;
  float corrected = scaled + 0.001f * native_sin(scaled);
  y[gid] = corrected;
}
)CL";

int main() {
  // 1. Backend + training data + model (cached across runs).
  const gpusim::GpuSimulator sim(gpusim::DeviceModel::titan_x());
  auto suite = benchgen::generate_training_suite();
  if (!suite.ok()) {
    std::fprintf(stderr, "training suite: %s\n", suite.error().to_string().c_str());
    return 1;
  }
  auto model = core::FrequencyModel::train_or_load(sim, suite.value(), {},
                                                   "gpufreq_model_cache.txt");
  if (!model.ok()) {
    std::fprintf(stderr, "training: %s\n", model.error().to_string().c_str());
    return 1;
  }

  // 2. Static features of the new kernel — no execution involved.
  auto features = clfront::extract_features_from_source(kNewKernel);
  if (!features.ok()) {
    std::fprintf(stderr, "feature extraction: %s\n", features.error().to_string().c_str());
    return 1;
  }
  std::printf("kernel features: %s\n\n", features.value().to_string().c_str());

  // 3. Predicted Pareto set over the sampled configuration space.
  const auto pareto = model.value().predict_pareto(features.value());
  std::printf("predicted Pareto-optimal frequency configurations:\n");
  std::printf("%-28s %10s %14s\n", "configuration", "speedup", "norm. energy");
  for (const auto& p : pareto) {
    std::printf("core %4d MHz / mem %4d MHz   %8.3f %14.3f%s\n", p.config.core_mhz,
                p.config.mem_mhz, p.speedup, p.energy,
                p.heuristic ? "   (mem-L heuristic)" : "");
  }
  const auto def = sim.freq().default_config();
  std::printf("\n(default configuration: core %d MHz / mem %d MHz -> 1.000 / 1.000)\n",
              def.core_mhz, def.mem_mhz);
  return 0;
}
