// Quickstart: the complete library flow in ~50 lines.
//
//   1. Build a Predictor — it trains on the 106 synthetic micro-benchmarks
//      against the simulated Titan X (or loads a cached model; training
//      takes a few seconds).
//   2. Hand it a brand-new OpenCL kernel *as source text*.
//   3. Get back the predicted Pareto-optimal (core, memory) frequency
//      configurations — without ever running the kernel.
#include <cstdio>

#include "clfront/features.hpp"
#include "core/predictor.hpp"

using namespace repro;

// A kernel the model has never seen: SAXPY with a twist of transcendentals.
static const char* kNewKernel = R"CL(
kernel void saxpy_tuned(global float* x, global float* y, float a, int n) {
  int gid = get_global_id(0);
  float xv = x[gid];
  float yv = y[gid];
  float scaled = a * xv + yv;
  float corrected = scaled + 0.001f * native_sin(scaled);
  y[gid] = corrected;
}
)CL";

int main() {
  // 1. Backend + training data + model, all behind the builder (the paper's
  //    defaults: simulated Titan X, linear-SVR speedup, RBF-SVR energy).
  auto predictor = core::Predictor::builder().cache("gpufreq_model_cache.txt").build();
  if (!predictor.ok()) {
    std::fprintf(stderr, "training: %s\n", predictor.error().to_string().c_str());
    return 1;
  }

  // 2. Static features of the new kernel — no execution involved. The
  //    predictor's FeaturePipeline is the one deterministic source→features
  //    path (whole-string or streamed, same bytes). When the features are
  //    not interesting by themselves, predictor.predict_source(kNewKernel)
  //    is this step and the next in one call.
  auto features = predictor.value().pipeline().featurize(kNewKernel);
  if (!features.ok()) {
    std::fprintf(stderr, "feature extraction: %s\n", features.error().to_string().c_str());
    return 1;
  }
  std::printf("kernel features: %s\n\n", features.value().to_string().c_str());

  // 3. Predicted Pareto set over the sampled configuration space.
  const auto pareto = predictor.value().predict_pareto(features.value());
  if (!pareto.ok()) {
    std::fprintf(stderr, "prediction: %s\n", pareto.error().to_string().c_str());
    return 1;
  }
  std::printf("predicted Pareto-optimal frequency configurations:\n");
  std::printf("%-28s %10s %14s\n", "configuration", "speedup", "norm. energy");
  for (const auto& p : pareto.value()) {
    std::printf("core %4d MHz / mem %4d MHz   %8.3f %14.3f%s\n", p.config.core_mhz,
                p.config.mem_mhz, p.speedup, p.energy,
                p.heuristic ? "   (mem-L heuristic)" : "");
  }
  const auto def = predictor.value().domain().default_config();
  std::printf("\n(default configuration: core %d MHz / mem %d MHz -> 1.000 / 1.000)\n",
              def.core_mhz, def.mem_mhz);
  return 0;
}
