// Quick-serve: the in-process serving flow in ~40 lines — a Service over a
// model cache, concurrent clients, micro-batched predictions. No sockets:
// this is the API tests and benchmarks use; repro_serve adds the wire.
#include <cstdio>
#include <thread>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "serve/model_cache.hpp"
#include "serve/service.hpp"

using namespace repro;

int main() {
  // Train once (or reuse the on-disk copy from a previous run), share the
  // model across two shards, coalesce requests for up to 500 us.
  serve::ServiceConfig config;
  config.options.shards = 2;
  config.options.max_batch = 8;
  config.options.batch_window = std::chrono::microseconds(500);
  serve::ModelCache cache(2, ".repro_serve_cache");
  auto service = serve::Service::create(config, cache);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.error().to_string().c_str());
    return 1;
  }

  // Four client threads fire the first 12 micro-benchmarks at the service.
  const auto suite = benchgen::generate_training_suite().value();
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < 12; i += 4) {
        auto response = service.value()->predict(suite[i].features);
        if (!response.ok()) {
          std::fprintf(stderr, "%s: %s\n", suite[i].name.c_str(),
                       response.error().to_string().c_str());
          continue;
        }
        std::printf("%-24s -> %zu Pareto-optimal configurations\n",
                    response.value().kernel.c_str(), response.value().pareto.size());
      }
    });
  }
  for (auto& t : clients) t.join();

  const auto stats = service.value()->stats();
  std::printf("\n%llu requests in %llu batches (largest batch: %llu)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.max_batch_seen));
  return 0;
}
