// Device characterization through the NVML-compatible API — the measurement
// loop of the paper's §4.1, runnable end-to-end against the simulated GPU:
// enumerate supported clocks, set application clocks, bind a workload, read
// board power, and derive per-task energy.
//
// Usage: characterize_device [benchmark-name]   (default: Convolution)
#include <cstdio>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"
#include "nvml/wrapper.hpp"

using namespace repro;

int main(int argc, char** argv) {
  const std::string benchmark_name = argc > 1 ? argv[1] : "Convolution";
  const auto* benchmark = kernels::find_benchmark(benchmark_name);
  if (benchmark == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'; available:\n", benchmark_name.c_str());
    for (const auto& b : kernels::test_suite()) std::fprintf(stderr, "  %s\n", b.name.c_str());
    return 1;
  }

  nvml::Session session;
  if (!session.ok()) {
    std::fprintf(stderr, "nvmlInit failed\n");
    return 1;
  }
  const auto device = nvml::Device::by_index(0);
  if (!device.ok()) {
    std::fprintf(stderr, "%s\n", device.error().to_string().c_str());
    return 1;
  }
  const auto& titan = device.value();
  std::printf("device: %s\n", titan.name().value_or("?").c_str());
  std::printf("workload: %s\n\n", benchmark->name.c_str());

  if (const auto st = titan.bind_workload(&benchmark->profile); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.error().to_string().c_str());
    return 1;
  }

  // Baseline at the default application clocks.
  if (const auto st = titan.reset_applications_clocks(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.error().to_string().c_str());
    return 1;
  }
  const auto baseline = titan.run_workload();
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.error().to_string().c_str());
    return 1;
  }
  const auto default_clocks = titan.effective_clocks().value();
  std::printf("default (core %d / mem %d): %.3f ms, %.3f J\n\n",
              default_clocks.core_mhz, default_clocks.mem_mhz, baseline.value().time_ms,
              baseline.value().energy_j);

  // Sweep: every supported memory clock, a handful of core clocks each.
  std::printf("%-10s %-10s %12s %12s %10s %10s %12s\n", "mem MHz", "core MHz", "time ms",
              "power W", "energy J", "speedup", "norm.energy");
  const auto mems = titan.supported_memory_clocks().value_or({});
  for (unsigned mem : mems) {
    const auto cores = titan.supported_graphics_clocks(mem).value_or({});
    // cores are enumerated descending; print ~6 per memory clock.
    const std::size_t stride = std::max<std::size_t>(1, cores.size() / 6);
    for (std::size_t i = 0; i < cores.size(); i += stride) {
      const unsigned core = cores[i];
      if (!titan.set_applications_clocks(mem, core).ok()) continue;
      const auto effective = titan.effective_clocks().value();
      const auto run = titan.run_workload();
      const auto power = titan.power_usage_watts();
      if (!run.ok() || !power.ok()) continue;
      std::printf("%-10u %-10d %12.3f %12.1f %10.3f %10.3f %12.3f%s\n", mem,
                  effective.core_mhz, run.value().time_ms, power.value(),
                  run.value().energy_j, baseline.value().time_ms / run.value().time_ms,
                  run.value().energy_j / baseline.value().energy_j,
                  static_cast<int>(core) != effective.core_mhz ? "  (clamped)" : "");
    }
  }

  (void)titan.bind_workload(nullptr);
  (void)titan.reset_applications_clocks();
  std::printf("\nnote: requested clocks above the cap are silently clamped — compare\n");
  std::printf("the requested column of nvmlDeviceGetApplicationsClock with ClockInfo.\n");
  return 0;
}
