// repro_cache_check — verify every model file in a cache directory.
//
//   repro_cache_check DIR [DIR...]
//
// Loads each "*.model" file with serve::load_cached_model (checksum header
// verified, payload fully parsed) and prints one line per file:
//
//   ok   <path> (<bytes> bytes)
//   BAD  <path>: <error>
//
// Exits 0 iff every file loads, 1 otherwise. Leftover "*.tmp.*" files from
// an interrupted save_model_atomic are reported too (they are harmless —
// never observed by readers — but the chaos soak counts them to prove the
// atomic-rename path cleans up). A missing or empty directory is not an
// error: a fleet that never finished training has nothing to check.
#include <cstdio>
#include <filesystem>
#include <string>

#include "serve/model_cache.hpp"

using namespace repro;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s DIR [DIR...]\n", argv[0]);
    return 2;
  }

  int bad = 0;
  std::size_t checked = 0;
  std::size_t leftovers = 0;
  for (int i = 1; i < argc; ++i) {
    std::error_code ec;
    std::filesystem::directory_iterator it(argv[i], ec);
    if (ec) {
      std::printf("skip %s: %s\n", argv[i], ec.message().c_str());
      continue;
    }
    for (const auto& entry : it) {
      if (!entry.is_regular_file(ec)) continue;
      const std::string path = entry.path().string();
      const std::string name = entry.path().filename().string();
      if (name.find(".tmp.") != std::string::npos) {
        ++leftovers;
        std::printf("tmp  %s (leftover from an interrupted save)\n", path.c_str());
        continue;
      }
      if (entry.path().extension() != ".model") continue;
      ++checked;
      if (auto model = serve::load_cached_model(path); model.ok()) {
        std::printf("ok   %s (%llu bytes)\n", path.c_str(),
                    static_cast<unsigned long long>(entry.file_size(ec)));
      } else {
        ++bad;
        std::printf("BAD  %s: %s\n", path.c_str(),
                    model.error().to_string().c_str());
      }
    }
  }
  std::printf("cache_check: %zu model file(s), %d bad, %zu tmp leftover(s)\n",
              checked, bad, leftovers);
  return bad == 0 ? 0 : 1;
}
