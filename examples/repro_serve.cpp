// repro_serve — the prediction server: train (or load from the model
// cache), then answer line-delimited JSON requests over a Unix or TCP
// socket (see docs/DETERMINISM.md for the wire format).
//
//   repro_serve --unix /tmp/repro.sock [options]
//   repro_serve --tcp 7070             [options]   (0 = ephemeral port)
//
// Options:
//   --shards N          worker shards, each owning a Predictor   (default 2)
//   --max-batch N       micro-batch size cap                     (default 16)
//   --batch-window-us N coalescing window in microseconds        (default 200)
//   --max-queue-delay-us N  shed (retryable "overloaded") when the estimated
//                       admission-queue delay exceeds N           (default 0 = off)
//   --cache-dir DIR     on-disk model cache directory  (default .repro_serve_cache)
//   --num-configs N     training configuration budget            (default 40)
//   --suite-stride N    train on every Nth micro-benchmark       (default 1)
//                       (N > 1 trades accuracy for startup time — demos/CI)
//   --broker PATH       ask the fleet's model-cache broker at this unix
//                       socket to train the model first; this worker then
//                       disk-loads it from the shared --cache-dir. Falls
//                       back to training locally if the broker is gone.
//
// Prints "READY <endpoint>" on stdout once the socket is accepting, then
// serves until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <signal.h>
#include <unistd.h>

#include "benchgen/benchgen.hpp"
#include "fleet/broker.hpp"
#include "serve/model_cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace repro;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --tcp PORT) [--shards N] [--max-batch N]\n"
               "          [--batch-window-us N] [--max-queue-delay-us N]\n"
               "          [--cache-dir DIR] [--num-configs N]\n"
               "          [--suite-stride N] [--broker PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions server_options;
  serve::ServiceConfig config;
  config.options.shards = 2;
  std::string cache_dir = ".repro_serve_cache";
  std::string broker_path;
  std::size_t suite_stride = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--unix" && has_value) {
      server_options.unix_path = argv[++i];
    } else if (arg == "--tcp" && has_value) {
      server_options.tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--shards" && has_value) {
      config.options.shards = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--max-batch" && has_value) {
      config.options.max_batch = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--batch-window-us" && has_value) {
      config.options.batch_window =
          std::chrono::microseconds(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--max-queue-delay-us" && has_value) {
      config.options.max_queue_delay =
          std::chrono::microseconds(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--cache-dir" && has_value) {
      cache_dir = argv[++i];
    } else if (arg == "--num-configs" && has_value) {
      config.training.num_configs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--suite-stride" && has_value) {
      suite_stride = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--broker" && has_value) {
      broker_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (server_options.unix_path.empty() && server_options.tcp_port < 0) {
    return usage(argv[0]);
  }

  if (suite_stride > 1) {
    auto full = benchgen::generate_training_suite();
    if (!full.ok()) {
      std::fprintf(stderr, "suite generation: %s\n", full.error().to_string().c_str());
      return 1;
    }
    std::vector<benchgen::MicroBenchmark> subset;
    for (std::size_t i = 0; i < full.value().size(); i += suite_stride) {
      subset.push_back(full.value()[i]);
    }
    config.suite = std::move(subset);
  }

  // Block the shutdown signals before any thread starts (threads inherit
  // the mask), then receive them with sigwait below — no handler and no
  // check-then-pause window for a signal to slip through.
  sigset_t stop_signals;
  sigemptyset(&stop_signals);
  sigaddset(&stop_signals, SIGINT);
  sigaddset(&stop_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);
  std::signal(SIGPIPE, SIG_IGN);  // broken client connections are not fatal

  if (!broker_path.empty()) {
    // Ask the fleet broker to train (or disk-load) the shared model first;
    // our own cache below then disk-hits the same directory instead of
    // repeating the fit. A dead broker only costs a local training run.
    std::printf("repro_serve: requesting model from broker %s\n", broker_path.c_str());
    std::fflush(stdout);
    serve::ConnectOptions retry;
    retry.attempts = 10;
    if (auto reply = fleet::fetch_model(broker_path, retry); !reply.ok()) {
      std::fprintf(stderr, "broker: %s; training locally\n",
                   reply.error().to_string().c_str());
    }
  }

  std::printf("repro_serve: training (or loading) the model...\n");
  std::fflush(stdout);
  serve::ModelCache cache(4, cache_dir);
  server_options.model_cache = &cache;
  auto service = serve::Service::create(config, cache);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.error().to_string().c_str());
    return 1;
  }

  auto server = serve::SocketServer::start(*service.value(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.error().to_string().c_str());
    return 1;
  }

  if (!server.value()->unix_path().empty()) {
    std::printf("READY unix:%s\n", server.value()->unix_path().c_str());
  } else {
    std::printf("READY tcp:%d\n", server.value()->tcp_port());
  }
  std::fflush(stdout);

  int sig = 0;
  while (sigwait(&stop_signals, &sig) != 0) {
    // Interrupted wait; try again.
  }

  std::printf("repro_serve: shutting down\n");
  server.value()->stop();
  service.value()->stop();
  const auto served = server.value()->stats();
  const auto batched = service.value()->stats();
  std::printf("repro_serve: %llu connections, %llu requests, %llu batches "
              "(largest %llu), %llu protocol errors\n",
              static_cast<unsigned long long>(served.connections),
              static_cast<unsigned long long>(served.requests),
              static_cast<unsigned long long>(batched.batches),
              static_cast<unsigned long long>(batched.max_batch_seen),
              static_cast<unsigned long long>(served.protocol_errors));
  return 0;
}
