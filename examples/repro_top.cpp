// repro_top — live one-screen view of a running repro_serve worker or
// fleet balancer, built on the "metrics" wire request.
//
//   repro_top --unix /tmp/repro.sock [--interval-ms 1000]
//   repro_top --tcp 7070 --once
//
// Each tick scrapes the target's metrics registry (against a balancer:
// the merged fleet view) and renders throughput (derived from successive
// repro_requests_total deltas), queue depth, the overload counters
// (shed / deadline_exceeded / rejected / redispatches), and the request
// latency histogram's quantile expansion. --once prints a single frame
// without clearing the screen — scripts and CI use it as a cheap "is the
// fleet answering metrics" probe.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "serve/client.hpp"

using namespace repro;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --tcp PORT) [--interval-ms N] [--once]\n",
               argv0);
  return 2;
}

/// Missing names read 0 — a worker answers repro_* names, a balancer adds
/// repro_balancer_*; one renderer serves both.
double value_of(const std::map<std::string, double>& values, const char* name) {
  const auto it = values.find(name);
  return it != values.end() ? it->second : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int tcp_port = -1;
  long interval_ms = 1000;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--unix" && has_value) {
      unix_path = argv[++i];
    } else if (arg == "--tcp" && has_value) {
      tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--interval-ms" && has_value) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--once") {
      once = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (unix_path.empty() && tcp_port < 0) return usage(argv[0]);
  if (interval_ms < 50) interval_ms = 50;

  auto client = unix_path.empty() ? serve::SocketClient::connect_tcp(tcp_port)
                                  : serve::SocketClient::connect_unix(unix_path);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.error().to_string().c_str());
    return 1;
  }
  const std::string target =
      unix_path.empty() ? "127.0.0.1:" + std::to_string(tcp_port) : unix_path;

  double prev_requests = 0.0;
  auto prev_time = std::chrono::steady_clock::now();
  bool have_prev = false;

  for (;;) {
    auto metrics = client.value().metrics();
    if (!metrics.ok()) {
      std::fprintf(stderr, "metrics: %s\n", metrics.error().to_string().c_str());
      return 1;
    }
    const std::map<std::string, double> values(metrics.value().values.begin(),
                                               metrics.value().values.end());
    const auto now = std::chrono::steady_clock::now();
    const double requests = value_of(values, "repro_requests_total");
    double throughput = 0.0;
    if (have_prev) {
      const double dt = std::chrono::duration<double>(now - prev_time).count();
      if (dt > 0.0) throughput = (requests - prev_requests) / dt;
    }
    prev_requests = requests;
    prev_time = now;
    have_prev = true;

    // A worker reports its own queue/uptime gauges; a balancer's merged
    // view carries repro_balancer_* on top — show whichever is present.
    const double queue = value_of(values, "repro_queue_depth") +
                         value_of(values, "repro_balancer_pending");
    const double uptime = std::max(value_of(values, "repro_uptime_seconds"),
                                   value_of(values, "repro_balancer_uptime_seconds"));
    const double alive = value_of(values, "repro_balancer_backends_alive");

    if (!once) std::fputs("\033[2J\033[H", stdout);
    std::printf("repro_top — %s   up %.0fs%s\n", target.c_str(), uptime,
                alive > 0.0
                    ? ("   workers alive " + std::to_string(static_cast<int>(alive)))
                          .c_str()
                    : "");
    std::printf("\n");
    std::printf("  throughput   %10.1f req/s      queue depth  %10.0f\n",
                throughput, queue);
    std::printf("  requests     %10.0f            batches      %10.0f\n",
                requests, value_of(values, "repro_batches_total"));
    std::printf("  shed         %10.0f            deadline     %10.0f\n",
                value_of(values, "repro_shed_total"),
                value_of(values, "repro_deadline_exceeded_total"));
    std::printf("  rejected     %10.0f            redispatch   %10.0f\n",
                value_of(values, "repro_rejected_total"),
                value_of(values, "repro_balancer_redispatches_total"));
    std::printf("  streamed     %10.0f            proto errors %10.0f\n",
                value_of(values, "repro_streamed_total"),
                value_of(values, "repro_protocol_errors_total"));
    std::printf("\n  request latency (us)\n");
    const double count = value_of(values, "repro_request_latency_us_count");
    const double sum = value_of(values, "repro_request_latency_us_sum_us");
    std::printf("  count %8.0f   mean %10.1f\n", count,
                count > 0.0 ? sum / count : 0.0);
    std::printf("  p50 %12.1f   p95 %12.1f\n",
                value_of(values, "repro_request_latency_us_p50_us"),
                value_of(values, "repro_request_latency_us_p95_us"));
    std::printf("  p99 %12.1f   max %12.1f\n",
                value_of(values, "repro_request_latency_us_p99_us"),
                value_of(values, "repro_request_latency_us_max_us"));
    std::fflush(stdout);

    if (once) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
