// repro_fleet — the multi-process serving fleet: a model-cache broker, N
// repro_serve worker processes under a supervisor, and a front balancer
// speaking the unchanged line-JSON protocol to clients.
//
//   repro_fleet --unix /tmp/fleet.sock --workers 3 [options]
//   repro_fleet --tcp 7070            --workers 3 [options]   (0 = ephemeral)
//
// Options:
//   --workers N         worker processes                        (default 2)
//   --dir DIR           runtime dir for sockets/logs (default: mkdtemp under /tmp)
//   --serve-binary PATH the repro_serve executable (default: next to argv[0])
//   --cache-dir DIR     shared on-disk model cache (default: DIR/model-cache)
//   --shards N          worker shards per process               (default 2)
//   --num-configs N     training configuration budget           (default 40)
//   --suite-stride N    train on every Nth micro-benchmark      (default 1)
//   --max-queue-delay-us N  per-worker overload shedding bound  (default 0 = off)
//   --chaos-kill-ms N   SIGKILL a random worker every N ms      (default 0 = off)
//   --worker-faults S   REPRO_FAULTS spec ("seed:key=v,...") exported to the
//                       worker processes ONLY — the broker, balancer, and
//                       supervisor in this process stay fault-free so the
//                       soak measures worker-side fault recovery, not a
//                       corrupted control plane
//
// Startup order: broker first (so the fleet's model is trained exactly once
// — workers block on it instead of fitting N copies), then all workers
// spawned concurrently, then the balancer connects to each worker socket
// and opens the client endpoint. Prints one "WORKER <i> pid <pid> sock
// <path>" line per worker and "READY <endpoint>" once clients can connect,
// then serves until SIGINT/SIGTERM. Shutdown reverses the order.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "benchgen/benchgen.hpp"
#include "common/fault.hpp"
#include "fleet/balancer.hpp"
#include "fleet/broker.hpp"
#include "fleet/supervisor.hpp"

using namespace repro;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --tcp PORT) [--workers N] [--dir DIR]\n"
               "          [--serve-binary PATH] [--cache-dir DIR] [--shards N]\n"
               "          [--num-configs N] [--suite-stride N]\n"
               "          [--max-queue-delay-us N] [--chaos-kill-ms N]\n"
               "          [--worker-faults SEED:SPEC]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fleet::BalancerOptions balancer_options;
  serve::ServiceConfig config;
  config.options.shards = 2;
  std::size_t workers = 2;
  std::string run_dir;
  std::string serve_binary;
  std::string cache_dir;
  std::size_t suite_stride = 1;
  std::size_t num_configs = 40;
  long max_queue_delay_us = 0;
  long chaos_kill_ms = 0;
  std::string worker_faults;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--unix" && has_value) {
      balancer_options.unix_path = argv[++i];
    } else if (arg == "--tcp" && has_value) {
      balancer_options.tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--workers" && has_value) {
      workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--dir" && has_value) {
      run_dir = argv[++i];
    } else if (arg == "--serve-binary" && has_value) {
      serve_binary = argv[++i];
    } else if (arg == "--cache-dir" && has_value) {
      cache_dir = argv[++i];
    } else if (arg == "--shards" && has_value) {
      config.options.shards =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--num-configs" && has_value) {
      num_configs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--suite-stride" && has_value) {
      suite_stride = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--max-queue-delay-us" && has_value) {
      max_queue_delay_us = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--chaos-kill-ms" && has_value) {
      chaos_kill_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--worker-faults" && has_value) {
      worker_faults = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (balancer_options.unix_path.empty() && balancer_options.tcp_port < 0) {
    return usage(argv[0]);
  }
  if (workers == 0) {
    std::fprintf(stderr, "repro_fleet: --workers must be >= 1\n");
    return 2;
  }
  config.training.num_configs = num_configs;

  if (run_dir.empty()) {
    char tmpl[] = "/tmp/repro_fleet.XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "repro_fleet: mkdtemp: %s\n", std::strerror(errno));
      return 1;
    }
    run_dir = made;
  } else {
    std::error_code ec;
    std::filesystem::create_directories(run_dir, ec);
  }
  if (cache_dir.empty()) cache_dir = run_dir + "/model-cache";
  if (serve_binary.empty()) {
    serve_binary =
        (std::filesystem::path(argv[0]).parent_path() / "repro_serve").string();
  }
  if (!std::filesystem::exists(serve_binary)) {
    std::fprintf(stderr, "repro_fleet: repro_serve binary not found at %s\n",
                 serve_binary.c_str());
    return 1;
  }

  if (suite_stride > 1) {
    auto full = benchgen::generate_training_suite();
    if (!full.ok()) {
      std::fprintf(stderr, "suite generation: %s\n", full.error().to_string().c_str());
      return 1;
    }
    std::vector<benchgen::MicroBenchmark> subset;
    for (std::size_t i = 0; i < full.value().size(); i += suite_stride) {
      subset.push_back(full.value()[i]);
    }
    config.suite = std::move(subset);
  }

  // Worker-only fault injection: REPRO_FAULTS must be in the environment
  // when the supervisor fork/execs workers (including every chaos respawn),
  // so it stays exported for the whole run. This process pins its OWN
  // injector to an empty spec first — the balancer, broker, and supervisor
  // here must stay fault-free or the soak would measure a corrupted control
  // plane instead of worker-side recovery.
  common::FaultInjector::Scope parent_faults_off(0, common::FaultSpec{});
  if (!worker_faults.empty()) {
    if (auto parsed = common::FaultInjector::parse(worker_faults); !parsed.ok()) {
      std::fprintf(stderr, "repro_fleet: --worker-faults: %s\n",
                   parsed.error().to_string().c_str());
      return 2;
    }
    ::setenv("REPRO_FAULTS", worker_faults.c_str(), 1);
    std::printf("repro_fleet: workers run with REPRO_FAULTS=%s\n",
                worker_faults.c_str());
  }

  // Same discipline as repro_serve: block the shutdown signals before any
  // thread (or child) exists, sigwait below. Children reset the mask.
  sigset_t stop_signals;
  sigemptyset(&stop_signals);
  sigaddset(&stop_signals, SIGINT);
  sigaddset(&stop_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  fleet::BrokerOptions broker_options;
  broker_options.unix_path = run_dir + "/broker.sock";
  broker_options.cache_dir = cache_dir;
  std::printf("repro_fleet: starting model broker (trains on first request)\n");
  std::fflush(stdout);
  auto broker = fleet::Broker::start(config, broker_options);
  if (!broker.ok()) {
    std::fprintf(stderr, "broker: %s\n", broker.error().to_string().c_str());
    return 1;
  }

  fleet::WorkerSpec spec;
  spec.binary = serve_binary;
  spec.common_args = {"--broker",       broker.value()->unix_path(),
                      "--cache-dir",    cache_dir,
                      "--shards",       std::to_string(config.options.shards),
                      "--num-configs",  std::to_string(num_configs),
                      "--suite-stride", std::to_string(suite_stride)};
  if (max_queue_delay_us > 0) {
    spec.common_args.push_back("--max-queue-delay-us");
    spec.common_args.push_back(std::to_string(max_queue_delay_us));
  }
  fleet::SupervisorOptions supervisor_options;
  supervisor_options.workers = workers;
  supervisor_options.socket_dir = run_dir;
  if (chaos_kill_ms > 0) {
    supervisor_options.chaos_kill_interval = std::chrono::milliseconds(chaos_kill_ms);
    std::printf("repro_fleet: chaos mode, SIGKILLing a random worker every %ldms\n",
                chaos_kill_ms);
  }
  std::printf("repro_fleet: spawning %zu worker(s)\n", workers);
  std::fflush(stdout);
  auto supervisor = fleet::Supervisor::start(spec, supervisor_options);
  if (!supervisor.ok()) {
    std::fprintf(stderr, "supervisor: %s\n", supervisor.error().to_string().c_str());
    return 1;
  }
  {
    const auto endpoints = supervisor.value()->endpoints();
    const auto pids = supervisor.value()->pids();
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      std::printf("WORKER %zu pid %d sock %s\n", i, static_cast<int>(pids[i]),
                  endpoints[i].c_str());
    }
  }

  std::vector<fleet::BackendEndpoint> backends;
  for (const auto& sock : supervisor.value()->endpoints()) {
    backends.push_back({sock, -1});
  }
  auto balancer = fleet::Balancer::start(std::move(backends), balancer_options);
  if (!balancer.ok()) {
    std::fprintf(stderr, "balancer: %s\n", balancer.error().to_string().c_str());
    return 1;
  }

  if (!balancer.value()->unix_path().empty()) {
    std::printf("READY unix:%s\n", balancer.value()->unix_path().c_str());
  } else {
    std::printf("READY tcp:%d\n", balancer.value()->tcp_port());
  }
  std::fflush(stdout);

  int sig = 0;
  while (sigwait(&stop_signals, &sig) != 0) {
    // Interrupted wait; try again.
  }

  std::printf("repro_fleet: shutting down\n");
  balancer.value()->stop();
  const auto routed = balancer.value()->stats();
  supervisor.value()->stop();
  const auto lifecycle = supervisor.value()->stats();
  broker.value()->stop();

  std::printf("repro_fleet: %llu connections, %llu requests, "
              "%llu redispatches, %llu backend failures, %llu reconnects; "
              "%llu spawns, %llu crashes, %llu restarts, %llu chaos kills\n",
              static_cast<unsigned long long>(routed.connections),
              static_cast<unsigned long long>(routed.requests),
              static_cast<unsigned long long>(routed.redispatches),
              static_cast<unsigned long long>(routed.backend_failures),
              static_cast<unsigned long long>(routed.reconnects),
              static_cast<unsigned long long>(lifecycle.spawns),
              static_cast<unsigned long long>(lifecycle.crashes),
              static_cast<unsigned long long>(lifecycle.restarts),
              static_cast<unsigned long long>(lifecycle.chaos_kills));
  return 0;
}
